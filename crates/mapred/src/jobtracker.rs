//! The JobTracker: job lifecycle, split computation, scheduling, recovery.
//!
//! Faithful to Hadoop 0.19 as the paper ran it: the JobTracker learns about
//! TaskTrackers from their heartbeats, computes splits
//! (`split = FileSize / NumMappers`, records of one DFS block — Figure 3),
//! dispatches tasks *on heartbeats*, detects dead TaskTrackers by
//! heartbeat silence and re-executes their tasks, and optionally launches
//! speculative duplicates of stragglers.
//!
//! Scheduling *decisions* live behind the [`Scheduler`] trait
//! ([`crate::sched`]): the tracker feeds it observations (heartbeats, task
//! starts/completions with durations and work sizes, node deaths) and asks
//! it for split plans, dispatch picks and speculative placements. Dispatch
//! is *two-level*: every free heartbeat slot first asks the cluster
//! scheduler which job deserves it ([`Scheduler::pick_job`] — multi-tenant
//! fair-share and deadline policies decide here), then the picked job's
//! scheduler which of its tasks to run ([`Scheduler::pick_task`]). The
//! cluster-wide policy comes from [`MrConfig::scheduler`]; a job may carry
//! its own ([`JobSpec::scheduler`]), which gets a private scheduler
//! instance for that job's lifetime governing its within-job decisions
//! (job-level picks stay with the cluster scheduler).

use std::collections::VecDeque;

use accelmr_des::prelude::*;
use accelmr_des::{ExpiryHeap, FxHashMap, FxHashSet};
use accelmr_dfs::msgs::{BlockLoc, LocationsReply, PreloadDone};
use accelmr_dfs::DfsHandle;
use accelmr_net::{NetHandle, NodeId};

use crate::config::{JobId, MrConfig, TaskId};
use crate::job::{
    JobError, JobInput, JobResult, JobSpec, OutputSink, ReduceSpec, TaskDescriptor, TaskWork,
};
use crate::msgs::{AssignTask, JobComplete, KillTask, SubmitJob, TaskReport, TtHeartbeat};
use crate::sched::{
    build_scheduler, task_work_size, ReclaimVictim, SchedView, Scheduler, SplitRequest,
    TaskCompletion, TaskLookup, TaskView,
};

const TIMER_LIVENESS: u64 = 0;
const KIND_INIT: u64 = 1;
const KIND_REDUCE_RPC: u64 = 2;
const KIND_FINALIZE: u64 = 3;

#[inline]
fn job_timer_tag(kind: u64, job: JobId) -> u64 {
    (kind << 32) | job.0 as u64
}

#[inline]
fn unpack_job_timer(tag: u64) -> (u64, JobId) {
    (tag >> 32, JobId(tag as u32))
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Initializing,
    WaitingLocations,
    MapRunning,
    ReduceRpc,
    ReduceRunning,
    Finalizing,
    Done,
}

struct TtInfo {
    actor: ActorId,
    last_heartbeat: SimTime,
    dead: bool,
    /// Progressive-blacklist failure score: bumped per failed attempt,
    /// halved every [`MrConfig::blacklist_probation`]. The node is
    /// blacklisted (skipped by dispatch) while the score is at or above
    /// [`MrConfig::blacklist_threshold`].
    fail_score: u32,
}

struct TaskState {
    work: TaskWork,
    /// Nodes holding input replicas (locality scheduling hint).
    hints: Vec<NodeId>,
    attempts: u32,
    completed: bool,
    /// Running attempts: `(attempt, node, started)`.
    running: Vec<(u32, NodeId, SimTime)>,
    /// Node where the successful attempt ran (shuffle source).
    ran_on: Option<NodeId>,
    is_reduce: bool,
}

/// One completed map attempt's output and the aggregate contributions it
/// folded into the job. Keeping the contributions lets the tracker
/// *subtract* them when the output's node dies and the map must re-execute
/// (otherwise re-execution would double-count kv pairs, digests, and byte
/// totals — exactly-once accounting under churn depends on this).
struct MapOutput {
    node: NodeId,
    pairs: u64,
    /// The attempt's kv pairs as a multiset (pair → count): subtraction-
    /// ready, and never larger than the pair list it summarizes.
    kv_counts: FxHashMap<(u64, u64), u64>,
    digest: (u64, u64),
    bytes_read: u64,
    /// Output size: shuffle partitioning input *and* the amount to
    /// subtract from `JobState::bytes_output` on loss.
    bytes_output: u64,
    local_reads: u64,
    remote_reads: u64,
}

struct JobState {
    spec: JobSpec,
    client: (ActorId, NodeId),
    submitted: SimTime,
    phase: Phase,
    tasks: Vec<TaskState>,
    pending: VecDeque<TaskId>,
    map_count: u32,
    reduce_count: u32,
    maps_completed: u32,
    reduces_completed: u32,
    // Aggregation.
    attempts_total: u32,
    failed_attempts: u32,
    speculative_attempts: u32,
    bytes_read: u64,
    bytes_output: u64,
    local_reads: u64,
    remote_reads: u64,
    kv: Vec<(u64, u64)>,
    digest_acc: u64,
    digest_count: u64,
    task_times: Vec<SimDuration>,
    /// Every dispatch, in order: `(task, node)`.
    dispatch_log: Vec<(TaskId, NodeId)>,
    /// Map outputs (and their folded contributions) for the shuffle.
    map_outputs: FxHashMap<TaskId, MapOutput>,
    succeeded: bool,
    /// Typed cause of failure, for [`JobResult::error`].
    error: Option<JobError>,
    /// Last instant the job dispatched or completed an attempt (or was
    /// submitted): the watchdog input. Maintained unconditionally; only
    /// *checked* when [`MrConfig::job_stall_timeout`] is set.
    last_progress: SimTime,
    // Fairness accounting: the integral of concurrently running attempts
    // over time (slot-seconds) and its step timeline. Maintained by
    // `note_share` at every change of the job's occupied-slot count.
    running_now: u32,
    share_last_change: SimTime,
    slot_seconds: f64,
    share_timeline: Vec<(SimTime, u32)>,
    /// Attempts of *this* job killed by preemptive reclamation.
    preempted_attempts: u32,
    /// Victim runtime discarded on this job's behalf (it was the
    /// beneficiary of the kills), already folded into `slot_seconds` —
    /// preemption charges the killing tenant for the work it wasted.
    wasted_slot_seconds: f64,
    /// Incomplete tasks with at least one running attempt, maintained
    /// incrementally at every `running`/`completed` mutation — the
    /// dispatchability input speculation-aware job picks read every free
    /// heartbeat slot (previously an O(tasks) scan per slot).
    running_tasks: u32,
}

impl JobState {
    fn record_bytes(&self) -> u64 {
        match &self.spec.input {
            JobInput::File { record_bytes, .. } => record_bytes.unwrap_or(64 << 20),
            JobInput::Synthetic { .. } => 0,
        }
    }

    /// Records a change of `delta` attempts in the job's occupied-slot
    /// count at `now`: integrates the previous level into `slot_seconds`
    /// and appends to the share timeline (coalescing same-instant steps).
    /// Negative deltas saturate at zero defensively — the call sites only
    /// subtract attempts they actually removed from `running`.
    fn note_share(&mut self, now: SimTime, delta: i64) {
        if delta == 0 {
            return;
        }
        self.slot_seconds +=
            self.running_now as f64 * now.since(self.share_last_change).as_secs_f64();
        self.share_last_change = now;
        self.running_now = (self.running_now as i64 + delta).max(0) as u32;
        match self.share_timeline.last_mut() {
            Some((t, level)) if *t == now => *level = self.running_now,
            _ => self.share_timeline.push((now, self.running_now)),
        }
    }

    /// Whether every map output a shuffle needs is currently available.
    /// Reduce dispatch is held while this is false (a map output was lost
    /// to a node death and its task is re-executing); rebuilt fetches are
    /// only correct against a complete output set. Trivially true for
    /// non-shuffle jobs.
    fn shuffle_ready(&self) -> bool {
        match &self.spec.reduce {
            ReduceSpec::Shuffle { .. } => {
                self.map_count > 0 && self.map_outputs.len() as u32 == self.map_count
            }
            _ => true,
        }
    }

    /// Whether pending reduce entries are currently withheld from dispatch
    /// (the churn-transient "shuffle with lost outputs" state: a reduce
    /// task exists but the output set it would fetch from is incomplete).
    /// The one condition shared by `pick_task`'s eligibility filter and
    /// `pick_job_for`'s view construction — they must never diverge, or a
    /// job the job-level policies see as runnable would decline dispatch.
    fn withholds_reduces(&self) -> bool {
        !self.shuffle_ready() && self.tasks.len() != self.map_count as usize
    }
}

/// The cluster-wide scheduler, running on the head node next to the
/// NameNode (the paper's Power6 JS22 blade).
pub struct JobTracker {
    cfg: MrConfig,
    net: NetHandle,
    dfs: DfsHandle,
    node: NodeId,
    tts: FxHashMap<NodeId, TtInfo>,
    jobs: FxHashMap<u32, JobState>,
    next_job: u32,
    /// The cluster-wide scheduler ([`MrConfig::scheduler`]). Long-lived, so
    /// adaptive policies learn across jobs within a session.
    scheduler: Box<dyn Scheduler>,
    /// Private scheduler instances for jobs carrying their own policy
    /// ([`JobSpec::scheduler`]); removed when the job completes.
    job_scheds: FxHashMap<u32, Box<dyn Scheduler>>,
    /// Epoch-fenced attempts `(job, task, attempt)`: attempts that were
    /// requeued when their node was declared dead. A fenced attempt's
    /// eventual report — from a falsely-declared-dead tracker that kept
    /// running, or one that heartbeats again after a partition heal — is
    /// rejected wholesale, keeping kv/digest accounting exactly-once (the
    /// re-execution's report is the one that counts).
    fenced: FxHashSet<(u32, u32, u32)>,
    /// Next instant the probation sweep halves every blacklist score.
    blacklist_decay_at: SimTime,
    /// Lazily-invalidated deadline heap driving the liveness sweep: one
    /// entry per live TaskTracker, pushed at registration/resurrection
    /// only (heartbeats just move `TtInfo::last_heartbeat`, the
    /// authoritative deadline input). Makes the per-tick sweep cost
    /// proportional to trackers near their deadline instead of O(cluster).
    expiry: ExpiryHeap<NodeId>,
    /// Live (registered, not declared dead) workers, ascending —
    /// maintained at registration, resurrection, and death so
    /// `total_slots`/`live_nodes` stop re-scanning `tts` per decision.
    live: Vec<NodeId>,
}

/// Resolves the scheduler for `job`: its private override if it has one,
/// the cluster default otherwise. A free function over the two fields so
/// callers can keep disjoint borrows of the rest of the tracker.
fn sched_mut<'a>(
    overrides: &'a mut FxHashMap<u32, Box<dyn Scheduler>>,
    default: &'a mut Box<dyn Scheduler>,
    job: u32,
) -> &'a mut dyn Scheduler {
    if overrides.contains_key(&job) {
        overrides.get_mut(&job).expect("checked").as_mut()
    } else {
        default.as_mut()
    }
}

/// Sorted `(node, bytes, pairs)` map-output list plus total pairs — the
/// shuffle partitioning input, shared by initial reduce-task construction
/// and the fetch rebuild at (re-)dispatch.
fn shuffle_outputs(map_outputs: &FxHashMap<TaskId, MapOutput>) -> (Vec<(NodeId, u64, u64)>, u64) {
    let mut outputs: Vec<(NodeId, u64, u64)> = map_outputs
        .values()
        .map(|mo| (mo.node, mo.bytes_output, mo.pairs))
        .collect();
    outputs.sort_unstable_by_key(|&(n, b, p)| (n, b, p));
    let total_pairs: u64 = outputs.iter().map(|&(_, _, p)| p).sum();
    (outputs, total_pairs)
}

/// Reducer `r`'s fetch list: an even share of every map output.
fn reduce_fetches(outputs: &[(NodeId, u64, u64)], reducers: usize, r: usize) -> Vec<(NodeId, u64)> {
    outputs
        .iter()
        .map(|&(node, bytes, _)| {
            let share = bytes / reducers as u64 + u64::from((bytes % reducers as u64) > r as u64);
            (node, share)
        })
        .collect()
}

/// Snapshot of one task for scheduler decisions.
fn task_view(ts: &TaskState) -> TaskView<'_> {
    TaskView {
        hints: &ts.hints,
        is_reduce: ts.is_reduce,
        completed: ts.completed,
        running: &ts.running,
        size: task_work_size(&ts.work),
    }
}

/// Lazy [`TaskLookup`] over the tracker's task table: snapshots are built
/// per probe instead of materializing an O(tasks) `Vec<TaskView>` for
/// every scheduler decision (the dominant per-heartbeat cost at 10k
/// nodes — most decisions touch a handful of tasks or none at all).
struct TaskStateLookup<'a>(&'a [TaskState]);

impl std::fmt::Debug for TaskStateLookup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskStateLookup({} tasks)", self.0.len())
    }
}

impl TaskLookup for TaskStateLookup<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, idx: usize) -> TaskView<'_> {
        task_view(&self.0[idx])
    }
}

/// Debug-build invariant check for the incrementally maintained per-job
/// counters the [`SchedView`] aggregates are built from. Compiles to
/// nothing in release builds.
fn debug_check_counters(job: &JobState) {
    debug_assert_eq!(
        job.running_now as usize,
        job.tasks.iter().map(|t| t.running.len()).sum::<usize>(),
        "running_now diverged from the task table"
    );
    debug_assert_eq!(
        job.running_tasks as usize,
        job.tasks
            .iter()
            .filter(|t| !t.completed && !t.running.is_empty())
            .count(),
        "running_tasks diverged from the task table"
    );
}

impl JobTracker {
    /// Builds a JobTracker on `node` (normally the head node).
    pub fn new(cfg: MrConfig, net: NetHandle, dfs: DfsHandle, node: NodeId) -> Self {
        let scheduler = build_scheduler(cfg.scheduler, &cfg);
        JobTracker {
            cfg,
            net,
            dfs,
            node,
            tts: FxHashMap::default(),
            jobs: FxHashMap::default(),
            next_job: 0,
            scheduler,
            job_scheds: FxHashMap::default(),
            fenced: FxHashSet::default(),
            blacklist_decay_at: SimTime::ZERO,
            expiry: ExpiryHeap::new(),
            live: Vec::new(),
        }
    }

    /// Marks `node` live: inserts into the sorted live list (no-op when
    /// already present, e.g. a registration racing a first heartbeat).
    fn note_tt_live(&mut self, node: NodeId) {
        if let Err(pos) = self.live.binary_search(&node) {
            self.live.insert(pos, node);
        }
    }

    /// Removes `node` from the sorted live list.
    fn note_tt_dead(&mut self, node: NodeId) {
        if let Ok(pos) = self.live.binary_search(&node) {
            self.live.remove(pos);
        }
    }

    /// Whether `node` is currently held out of dispatch by the progressive
    /// blacklist. Always `false` with the knob unset (the default).
    fn is_blacklisted(&self, node: NodeId) -> bool {
        match (self.cfg.blacklist_threshold, self.tts.get(&node)) {
            (Some(th), Some(tt)) => tt.fail_score >= th,
            _ => false,
        }
    }

    /// Scores a failed attempt against its node and enters the node into
    /// the blacklist at the threshold. Inert with the knob unset.
    fn note_node_failure(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        let Some(th) = self.cfg.blacklist_threshold else {
            return;
        };
        if let Some(tt) = self.tts.get_mut(&node) {
            tt.fail_score += 1;
            if tt.fail_score == th {
                ctx.stats().incr("mr.blacklist_entries");
            }
        }
    }

    /// Probation decay: every [`MrConfig::blacklist_probation`], halve all
    /// failure scores, so a blacklisted node that stops failing drifts
    /// back into service instead of being banned forever. Runs on the
    /// liveness tick; inert with blacklisting unset.
    fn decay_blacklist(&mut self, now: SimTime) {
        if self.cfg.blacklist_threshold.is_none() {
            return;
        }
        if self.blacklist_decay_at == SimTime::ZERO {
            self.blacklist_decay_at = now + self.cfg.blacklist_probation;
            return;
        }
        if now < self.blacklist_decay_at {
            return;
        }
        // Catch up arithmetically: k elapsed probation periods halve every
        // score k times, which is one shift — the old per-period loop
        // walked the whole tracker map once per missed period (quadratic
        // after a long idle gap on a big cluster). A u32 score is zero
        // after 32 halvings, so the shift saturates there.
        let period = self.cfg.blacklist_probation;
        let k = now.since(self.blacklist_decay_at).as_nanos() / period.as_nanos().max(1) + 1;
        let shift = k.min(32) as u32;
        // audit:allow(map-order): per-node score halving is independent per entry; order is unobservable and no events issue here
        for tt in self.tts.values_mut() {
            tt.fail_score >>= shift;
        }
        self.blacklist_decay_at += period * k;
    }

    /// Total live map slots — O(1) off the maintained live list (the old
    /// full-map scan ran at the top of every dispatch decision, turning
    /// each free heartbeat slot into an O(cluster) walk).
    fn total_slots(&self) -> usize {
        self.live.len() * self.cfg.map_slots_per_node
    }

    /// Asks the job's scheduler how to split `total` work items into map
    /// tasks. (`split = FileSize/NumMappers` under the default uniform
    /// plan; adaptive policies may oversplit or weight by node speed.)
    fn plan_splits(&mut self, job_id: JobId, total: u64) -> Option<Vec<u64>> {
        let default_tasks = self.total_slots().max(1);
        let (kernel, requested) = {
            let job = self.jobs.get(&job_id.0)?;
            (job.spec.kernel.name(), job.spec.num_map_tasks)
        };
        let req = SplitRequest {
            job: job_id,
            kernel,
            total,
            requested_tasks: requested,
            default_tasks,
            live_nodes: &self.live,
            slots_per_node: self.cfg.map_slots_per_node,
        };
        let sched = sched_mut(&mut self.job_scheds, &mut self.scheduler, job_id.0);
        Some(sched.plan_splits(&req).split(total))
    }

    /// Builds map tasks for a file job once locations are known.
    fn build_file_tasks(&mut self, job_id: JobId, view: &accelmr_dfs::msgs::FileView) {
        let record_bytes = self
            .jobs
            .get(&job_id.0)
            .map(|j| j.record_bytes().max(1))
            .unwrap_or(1);
        let total_records = view.len.div_ceil(record_bytes);
        // Balanced division of whole records across tasks (the paper's
        // split = FileSize/NumMappers with 64 MB records, under the
        // default plan).
        let Some(counts) = self.plan_splits(job_id, total_records) else {
            return;
        };
        let Some(job) = self.jobs.get_mut(&job_id.0) else {
            return;
        };
        let mut next_record = 0u64;
        for records in counts {
            if records == 0 {
                continue;
            }
            let start = next_record * record_bytes;
            let end = ((next_record + records) * record_bytes).min(view.len);
            next_record += records;
            let blocks: Vec<BlockLoc> = view
                .blocks
                .iter()
                .filter(|b| b.offset < end && b.offset + b.len > start)
                .cloned()
                .collect();
            let mut hints: Vec<NodeId> = Vec::new();
            for b in &blocks {
                for &r in &b.replicas {
                    if !hints.contains(&r) {
                        hints.push(r);
                    }
                }
            }
            let (path, file_seed) = (view.path.clone(), view.seed);
            job.tasks.push(TaskState {
                work: TaskWork::MapRange {
                    path,
                    file_seed,
                    start,
                    end,
                    record_bytes,
                    blocks,
                },
                hints,
                attempts: 0,
                completed: false,
                running: Vec::new(),
                ran_on: None,
                is_reduce: false,
            });
            job.pending.push_back(TaskId(job.tasks.len() as u32 - 1));
        }
        job.map_count = job.tasks.len() as u32;
        job.phase = Phase::MapRunning;
    }

    fn build_synthetic_tasks(&mut self, job_id: JobId, total_units: u64) {
        let Some(counts) = self.plan_splits(job_id, total_units) else {
            return;
        };
        let Some(job) = self.jobs.get_mut(&job_id.0) else {
            return;
        };
        for (i, &units) in counts.iter().enumerate() {
            let i = i as u64;
            job.tasks.push(TaskState {
                work: TaskWork::MapUnits { units, index: i },
                hints: Vec::new(),
                attempts: 0,
                completed: false,
                running: Vec::new(),
                ran_on: None,
                is_reduce: false,
            });
            job.pending.push_back(TaskId(i as u32));
        }
        job.map_count = job.tasks.len() as u32;
        job.phase = Phase::MapRunning;
    }

    /// Picks the next pending task for `node` by asking the job's
    /// scheduler. `None` when the queue is dry — or when the scheduler
    /// holds the node back (adaptive admission control).
    ///
    /// While a shuffle's map outputs are incomplete (a node death forced
    /// map re-execution), reduce tasks are withheld from the scheduler's
    /// view: their fetch lists can only be rebuilt against a complete
    /// output set. In static runs every pending entry is always eligible,
    /// so the scheduler sees exactly the historical view.
    fn pick_task(&mut self, job_id: u32, node: NodeId) -> Option<TaskId> {
        let slots_per_node = self.cfg.map_slots_per_node;
        let cluster_slots = self.total_slots();
        let sched = sched_mut(&mut self.job_scheds, &mut self.scheduler, job_id);
        let job = self.jobs.get_mut(&job_id)?;
        if job.pending.is_empty() {
            return None;
        }
        // Fast path whenever every pending entry is eligible: the output
        // set is complete, or no reduce task even exists yet (the whole
        // map phase) — only the churn-transient "shuffle with lost
        // outputs" state pays for filtering.
        if !job.withholds_reduces() {
            debug_check_counters(job);
            let idx = {
                let tasks = TaskStateLookup(&job.tasks);
                let view = SchedView {
                    job: JobId(job_id),
                    kernel: job.spec.kernel.name(),
                    tenant: &job.spec.tenant,
                    weight: job.spec.weight,
                    deadline: job.spec.deadline,
                    submitted: job.submitted,
                    eligible: true,
                    cluster_slots,
                    pending: job.pending.make_contiguous(),
                    tasks: &tasks,
                    running_slots: job.running_now as usize,
                    running_incomplete: job.running_tasks as usize,
                    completed_task_times: &job.task_times,
                    slots_per_node,
                };
                sched.pick_task(&view, node)?
            };
            return job.pending.remove(idx);
        }
        let eligible: Vec<usize> = job
            .pending
            .iter()
            .enumerate()
            .filter(|&(_, tid)| !job.tasks[tid.0 as usize].is_reduce)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let pending_view: Vec<TaskId> = eligible.iter().map(|&i| job.pending[i]).collect();
        let idx = {
            let tasks = TaskStateLookup(&job.tasks);
            let view = SchedView {
                job: JobId(job_id),
                kernel: job.spec.kernel.name(),
                tenant: &job.spec.tenant,
                weight: job.spec.weight,
                deadline: job.spec.deadline,
                submitted: job.submitted,
                eligible: true,
                cluster_slots,
                pending: &pending_view,
                tasks: &tasks,
                running_slots: job.running_now as usize,
                running_incomplete: job.running_tasks as usize,
                completed_task_times: &job.task_times,
                slots_per_node,
            };
            sched.pick_task(&view, node)?
        };
        job.pending.remove(eligible[idx])
    }

    fn assign(&mut self, ctx: &mut Ctx<'_>, job_id: u32, task: TaskId, node: NodeId) {
        let Some(tt) = self.tts.get(&node) else {
            return;
        };
        let tt_actor = tt.actor;
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        // Reduce fetch lists are rebuilt from the *current* map outputs at
        // every dispatch: after churn, a re-executed map's output lives on
        // a different node than when the reduce task was first planned.
        // Dispatch is gated on `shuffle_ready`, so the set is complete.
        if job.tasks[task.0 as usize].is_reduce && job.shuffle_ready() {
            let reducers = job.reduce_count as usize;
            let r = (task.0 - job.map_count) as usize;
            let (outputs, total_pairs) = shuffle_outputs(&job.map_outputs);
            if let TaskWork::Reduce { fetches, pairs, .. } = &mut job.tasks[task.0 as usize].work {
                *fetches = reduce_fetches(&outputs, reducers, r);
                *pairs = total_pairs / reducers as u64;
            }
        }
        let ts = &mut job.tasks[task.0 as usize];
        ts.attempts += 1;
        job.attempts_total += 1;
        let attempt = ts.attempts;
        let was_active = !ts.completed && !ts.running.is_empty();
        ts.running.push((attempt, node, ctx.now()));
        if !ts.completed && !was_active {
            job.running_tasks += 1;
        }
        job.dispatch_log.push((task, node));
        let reduce_merge_time = if ts.is_reduce {
            match (&job.spec.reduce, &ts.work) {
                (ReduceSpec::Shuffle { reducer, .. }, TaskWork::Reduce { fetches, pairs, .. }) => {
                    let bytes: u64 = fetches.iter().map(|&(_, b)| b).sum();
                    Some(reducer.reduce_time(bytes, *pairs))
                }
                _ => None,
            }
        } else {
            None
        };
        let output = if ts.is_reduce {
            match &ts.work {
                TaskWork::Reduce {
                    write_output: true,
                    output_path,
                    ..
                } => OutputSink::Dfs {
                    path: output_path.clone(),
                    replication: None,
                },
                _ => OutputSink::Discard,
            }
        } else {
            job.spec.output.clone()
        };
        let descriptor = TaskDescriptor {
            job: JobId(job_id),
            task,
            attempt,
            work: ts.work.clone(),
            kernel: job.spec.kernel.clone(),
            output,
            reduce_merge_time,
        };
        job.note_share(ctx.now(), 1);
        job.last_progress = ctx.now();
        ctx.stats().incr("mr.assignments");
        let now = ctx.now();
        let has_override = self.job_scheds.contains_key(&job_id);
        let sched = sched_mut(&mut self.job_scheds, &mut self.scheduler, job_id);
        sched.on_task_started(JobId(job_id), task, node, now);
        if has_override {
            // The cluster scheduler owns job-level decisions for *every*
            // job, so it observes starts/completions even when a per-job
            // override handles the job's task-level decisions.
            self.scheduler
                .on_task_started(JobId(job_id), task, node, now);
        }
        let (net, my) = (self.net, self.node);
        net.unicast(ctx, my, node, tt_actor, 1024, AssignTask { descriptor });
    }

    /// Heartbeat-driven scheduling for one TaskTracker: every free slot
    /// first asks the cluster scheduler *which job* deserves it
    /// ([`Scheduler::pick_job`] — the job-level half of the two-level
    /// decision), then the picked job's scheduler which task. A job that
    /// declines a regular dispatch (queue dry, or adaptive admission
    /// control) is offered a speculative straggler copy before being
    /// retired from this heartbeat's candidates. Under the default
    /// lowest-id job picker this reproduces the historical "drain each job
    /// regular-then-speculative in ascending id order" loop event for
    /// event — proven by the golden multi-job traces
    /// (`job_level_dispatch_is_trace_equivalent`).
    fn schedule_on(&mut self, ctx: &mut Ctx<'_>, node: NodeId, mut free: usize) {
        // A blacklisted tracker stays registered and keeps heartbeating
        // (its slots still count toward the cluster total) but is handed
        // no work — regular or speculative — until probation decays its
        // failure score back under the threshold.
        if self.is_blacklisted(node) {
            ctx.stats().incr("mr.blacklist_skips");
            return;
        }
        // Jobs retired for this heartbeat (nothing left to offer), and
        // jobs whose regular queue declined (skip straight to speculation
        // on their next pick — `pick_task` cannot start returning `Some`
        // again within one heartbeat, since dispatch only shrinks queues).
        let mut exhausted: Vec<u32> = Vec::new();
        let mut regular_declined: Vec<u32> = Vec::new();
        while free > 0 {
            let Some(job_id) = self.pick_job_for(node, &exhausted) else {
                break;
            };
            if !regular_declined.contains(&job_id) {
                if let Some(task) = self.pick_task(job_id, node) {
                    self.assign(ctx, job_id, task, node);
                    free -= 1;
                    continue;
                }
                regular_declined.push(job_id);
            }
            // Speculative duplicates once the job's queue is dry (or held
            // back).
            if self.cfg.speculative {
                if let Some(task) = self.pick_straggler(ctx.now(), job_id, node) {
                    if let Some(job) = self.jobs.get_mut(&job_id) {
                        job.speculative_attempts += 1;
                    }
                    ctx.stats().incr("mr.speculative_launches");
                    self.assign(ctx, job_id, task, node);
                    free -= 1;
                    continue;
                }
            }
            exhausted.push(job_id);
        }
        // Preemptive slot reclamation: only once the node is out of free
        // slots may a policy name running attempts to kill and requeue —
        // the slots free (and re-dispatch) at this node's next heartbeat.
        // Inert unless `MrConfig::preemption` enables it, which keeps every
        // historical trace byte-identical (pinned by the goldens).
        if free == 0 {
            self.reclaim_on(ctx, node);
        }
    }

    /// Asks the cluster scheduler to [`reclaim`](Scheduler::reclaim) slots
    /// on the saturated `node` and executes the kills it names. Like every
    /// job-level decision the ask goes to the *cluster* scheduler only.
    fn reclaim_on(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        if !self.cfg.preemption.enabled() {
            return;
        }
        for victim in self.pick_victims(node, ctx.now()) {
            self.preempt(ctx, victim, node);
        }
    }

    /// Builds the same per-job view slice as [`pick_job_for`] (no jobs
    /// retired — reclamation is asked once per heartbeat) and collects the
    /// cluster scheduler's victims. Returns nothing when no job could even
    /// take a reclaimed slot, so idle heartbeats never pay for views.
    fn pick_victims(&mut self, node: NodeId, now: SimTime) -> Vec<ReclaimVictim> {
        let cluster_slots = self.total_slots();
        let slots_per_node = self.cfg.map_slots_per_node;
        let mut ids: Vec<u32> = self
            .jobs
            .iter()
            .filter(|(_, j)| matches!(j.phase, Phase::MapRunning | Phase::ReduceRunning))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        if ids.is_empty() {
            return Vec::new();
        }
        for id in &ids {
            if let Some(job) = self.jobs.get_mut(id) {
                job.pending.make_contiguous();
            }
        }
        // Eligibility mirrors dispatch: a beneficiary must have pending
        // work (withheld reduces excluded) — speculation never justifies a
        // kill, so the speculative arm of `pick_job_for`'s dispatchability
        // is deliberately absent here.
        let filtered: Vec<(Option<Vec<TaskId>>, bool)> = ids
            .iter()
            .map(|id| {
                let job = &self.jobs[id];
                let filt: Option<Vec<TaskId>> = job.withholds_reduces().then(|| {
                    job.pending
                        .iter()
                        .copied()
                        .filter(|tid| !job.tasks[tid.0 as usize].is_reduce)
                        .collect()
                });
                let pending_len = filt.as_ref().map_or(job.pending.len(), Vec::len);
                (filt, pending_len > 0)
            })
            .collect();
        if !filtered.iter().any(|(_, dispatchable)| *dispatchable) {
            return Vec::new();
        }
        let lookups: Vec<TaskStateLookup<'_>> = ids
            .iter()
            .map(|id| TaskStateLookup(&self.jobs[id].tasks))
            .collect();
        let views: Vec<SchedView<'_>> = ids
            .iter()
            .zip(&lookups)
            .zip(&filtered)
            .map(|((id, tasks), (filt, dispatchable))| {
                let job = &self.jobs[id];
                let pending: &[TaskId] = match filt {
                    Some(p) => p,
                    None => job.pending.as_slices().0,
                };
                SchedView {
                    job: JobId(*id),
                    kernel: job.spec.kernel.name(),
                    tenant: &job.spec.tenant,
                    weight: job.spec.weight,
                    deadline: job.spec.deadline,
                    submitted: job.submitted,
                    eligible: *dispatchable,
                    cluster_slots,
                    pending,
                    tasks,
                    running_slots: job.running_now as usize,
                    running_incomplete: job.running_tasks as usize,
                    completed_task_times: &job.task_times,
                    slots_per_node,
                }
            })
            .collect();
        self.scheduler.reclaim(&views, node, now)
    }

    /// Executes one preemption kill: removes the attempt from its task's
    /// running list, requeues the task (unless a speculative sibling still
    /// runs it), fences the attempt so its eventual completion report is
    /// rejected (the PR-8 zombie path, reused verbatim), re-bills the
    /// discarded slot-seconds from the victim job to the beneficiary, and
    /// tells the TaskTracker to kill the attempt. The freed slot surfaces
    /// in the node's next heartbeat.
    ///
    /// Exactly-once needs no kv/digest surgery here: a *running* map
    /// attempt has folded nothing into the job (folding happens only on a
    /// successful report), and the fence guarantees at most one of
    /// {preemption kill, natural completion} takes effect.
    fn preempt(&mut self, ctx: &mut Ctx<'_>, v: ReclaimVictim, node: NodeId) {
        let now = ctx.now();
        let Some(tt) = self.tts.get(&node) else {
            return;
        };
        let tt_actor = tt.actor;
        let Some(job) = self.jobs.get_mut(&v.job.0) else {
            debug_assert!(false, "reclaim named unknown job {}", v.job);
            return;
        };
        let Some(ts) = job.tasks.get_mut(v.task.0 as usize) else {
            debug_assert!(false, "reclaim named unknown task {}/{}", v.job, v.task);
            return;
        };
        debug_assert!(
            !ts.is_reduce && !ts.completed,
            "reclaim named a reduce or completed task {}/{}",
            v.job,
            v.task
        );
        if ts.is_reduce || ts.completed {
            return;
        }
        let Some(pos) = ts
            .running
            .iter()
            .position(|&(a, n, _)| a == v.attempt && n == node)
        else {
            debug_assert!(false, "reclaim named attempt not running on node");
            return;
        };
        let (_, _, started) = ts.running.remove(pos);
        if ts.running.is_empty() {
            job.pending.push_back(v.task);
            // The guard above established `!ts.completed`, so this task
            // was counted active until its sole attempt died just now.
            job.running_tasks -= 1;
        }
        job.note_share(now, -1);
        // Charge the killing tenant: the victim's discarded runtime moves
        // from its slot-seconds to the beneficiary's, and is reported as
        // the beneficiary's wasted work.
        let elapsed = now.since(started).as_secs_f64();
        job.slot_seconds -= elapsed;
        job.preempted_attempts += 1;
        self.fenced.insert((v.job.0, v.task.0, v.attempt));
        if let Some(b) = self.jobs.get_mut(&v.beneficiary.0) {
            b.slot_seconds += elapsed;
            b.wasted_slot_seconds += elapsed;
        }
        ctx.stats().incr("mr.preemptions");
        let kill = KillTask {
            job: v.job,
            task: v.task,
            attempt: v.attempt,
        };
        let (net, my) = (self.net, self.node);
        net.unicast(ctx, my, node, tt_actor, 128, kill);
    }

    /// Asks the cluster scheduler which active job the next free slot on
    /// `node` should serve. Builds one view per active job — ineligible
    /// entries (retired this heartbeat, or with nothing dispatchable) stay
    /// in the slice so tenant shares account every running attempt — and
    /// validates the pick against the eligibility the views advertise.
    /// Job-level decisions always go to the cluster scheduler; per-job
    /// overrides only govern decisions within their own job.
    fn pick_job_for(&mut self, node: NodeId, exhausted: &[u32]) -> Option<u32> {
        let cluster_slots = self.total_slots();
        let slots_per_node = self.cfg.map_slots_per_node;
        let speculative = self.cfg.speculative;
        let mut ids: Vec<u32> = self
            .jobs
            .iter()
            .filter(|(_, j)| matches!(j.phase, Phase::MapRunning | Phase::ReduceRunning))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        if ids.is_empty() {
            return None;
        }
        // Make every pending queue contiguous first (needs `&mut`); the
        // immutable view pass below can then slice it.
        for id in &ids {
            if let Some(job) = self.jobs.get_mut(id) {
                job.pending.make_contiguous();
            }
        }
        // Owned pending snapshots for jobs in the churn-transient "shuffle
        // with lost outputs" state, where reduce entries are withheld from
        // dispatch (`JobState::withholds_reduces`, the same condition
        // `pick_task` applies); `None` = borrow the queue as-is. Computed
        // together with per-job dispatchability so heartbeats with nothing
        // to hand out (the common idle case, and every `schedule_on`'s
        // terminating call) return before any task views are built.
        let filtered: Vec<(Option<Vec<TaskId>>, bool)> = ids
            .iter()
            .map(|id| {
                let job = &self.jobs[id];
                debug_check_counters(job);
                let filt: Option<Vec<TaskId>> = job.withholds_reduces().then(|| {
                    job.pending
                        .iter()
                        .copied()
                        .filter(|tid| !job.tasks[tid.0 as usize].is_reduce)
                        .collect()
                });
                let pending_len = filt.as_ref().map_or(job.pending.len(), Vec::len);
                // `running_tasks` is the incrementally maintained count of
                // incomplete tasks with a running attempt — what the old
                // O(tasks) `any` scan recomputed per free slot.
                let dispatchable = pending_len > 0 || (speculative && job.running_tasks > 0);
                (filt, dispatchable)
            })
            .collect();
        if !ids
            .iter()
            .zip(&filtered)
            .any(|(id, (_, dispatchable))| *dispatchable && !exhausted.contains(id))
        {
            return None;
        }
        let lookups: Vec<TaskStateLookup<'_>> = ids
            .iter()
            .map(|id| TaskStateLookup(&self.jobs[id].tasks))
            .collect();
        let views: Vec<SchedView<'_>> = ids
            .iter()
            .zip(&lookups)
            .zip(&filtered)
            .map(|((id, tasks), (filt, dispatchable))| {
                let job = &self.jobs[id];
                let pending: &[TaskId] = match filt {
                    Some(p) => p,
                    None => job.pending.as_slices().0,
                };
                SchedView {
                    job: JobId(*id),
                    kernel: job.spec.kernel.name(),
                    tenant: &job.spec.tenant,
                    weight: job.spec.weight,
                    deadline: job.spec.deadline,
                    submitted: job.submitted,
                    eligible: *dispatchable && !exhausted.contains(id),
                    cluster_slots,
                    pending,
                    tasks,
                    running_slots: job.running_now as usize,
                    running_incomplete: job.running_tasks as usize,
                    completed_task_times: &job.task_times,
                    slots_per_node,
                }
            })
            .collect();
        let pick = self.scheduler.pick_job(&views, node)?;
        let valid = views.iter().any(|v| v.job == pick && v.eligible);
        debug_assert!(valid, "scheduler picked ineligible job {pick}");
        valid.then_some(pick.0)
    }

    /// Asks the job's scheduler for a straggler to speculatively
    /// duplicate on `node`.
    fn pick_straggler(&mut self, now: SimTime, job_id: u32, node: NodeId) -> Option<TaskId> {
        let slots_per_node = self.cfg.map_slots_per_node;
        let cluster_slots = self.total_slots();
        let sched = sched_mut(&mut self.job_scheds, &mut self.scheduler, job_id);
        let job = self.jobs.get_mut(&job_id)?;
        let tasks = TaskStateLookup(&job.tasks);
        let view = SchedView {
            job: JobId(job_id),
            kernel: job.spec.kernel.name(),
            tenant: &job.spec.tenant,
            weight: job.spec.weight,
            deadline: job.spec.deadline,
            submitted: job.submitted,
            eligible: true,
            cluster_slots,
            pending: job.pending.make_contiguous(),
            tasks: &tasks,
            running_slots: job.running_now as usize,
            running_incomplete: job.running_tasks as usize,
            completed_task_times: &job.task_times,
            slots_per_node,
        };
        let pick = sched.pick_straggler(&view, node, now)?;
        // No speculative reduce copies while the shuffle's map outputs are
        // incomplete: a duplicate dispatched now would be rebuilt against
        // a partial output set (see `assign`).
        if job.tasks[pick.0 as usize].is_reduce && !job.shuffle_ready() {
            return None;
        }
        Some(pick)
    }

    fn handle_report(&mut self, ctx: &mut Ctx<'_>, report: TaskReport) {
        let job_id = report.job.0;
        // Epoch fence: the attempt was requeued when its node was declared
        // dead, so this report is from a zombie execution. Reject it
        // before it can touch running lists, pending queues, or kv/digest
        // folds — the re-executed attempt's report is the real one.
        if self.fenced.remove(&(job_id, report.task.0, report.attempt)) {
            ctx.stats().incr("mr.fenced_reports");
            return;
        }
        if !report.ok {
            self.note_node_failure(ctx, report.node);
        }
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        let (removed, was_active) = {
            let Some(ts) = job.tasks.get_mut(report.task.0 as usize) else {
                return;
            };
            let was_active = !ts.completed && !ts.running.is_empty();
            let before = ts.running.len();
            ts.running
                .retain(|&(a, n, _)| !(a == report.attempt && n == report.node));
            ((before - ts.running.len()) as i64, was_active)
        };
        job.note_share(ctx.now(), -removed);
        let ts = &mut job.tasks[report.task.0 as usize];
        let is_active = !ts.completed && !ts.running.is_empty();
        if was_active && !is_active {
            job.running_tasks -= 1;
        }

        if !report.ok {
            job.failed_attempts += 1;
            ctx.stats().incr("mr.attempt_failures");
            if !ts.completed {
                if ts.attempts >= self.cfg.max_attempts {
                    job.succeeded = false;
                    job.error = Some(JobError::TaskFailed {
                        task: report.task,
                        attempts: ts.attempts,
                    });
                    self.finalize(ctx, JobId(job_id));
                } else {
                    job.pending.push_back(report.task);
                }
            }
            return;
        }

        if ts.completed {
            // Speculative loser or zombie after recovery: drop the result.
            ctx.stats().incr("mr.stale_reports");
            return;
        }
        ts.completed = true;
        ts.ran_on = Some(report.node);
        // Kill other in-flight attempts of the same task — and stop
        // billing their slots to the job: the kill frees the slot, and a
        // killed attempt never reports back (a natural-completion race
        // arrives as a stale report and must not double-subtract, which is
        // why the entries leave `running` here, at kill time).
        let others: Vec<(u32, NodeId)> = ts.running.iter().map(|&(a, n, _)| (a, n)).collect();
        ts.running.clear();
        if is_active {
            // The task was still counted active after the winner's entry
            // left `running` (speculative siblings in flight); completion
            // retires it now.
            job.running_tasks -= 1;
        }
        let is_reduce = ts.is_reduce;
        let kernel = job.spec.kernel.name();
        // The work the attempt performed, for throughput learning: samples
        // for synthetic tasks, actual bytes read otherwise.
        let work = match &ts.work {
            TaskWork::MapUnits { units, .. } => *units,
            _ => report.metrics.bytes_read,
        };

        job.note_share(ctx.now(), -(others.len() as i64));
        job.last_progress = ctx.now();
        job.bytes_read += report.metrics.bytes_read;
        job.bytes_output += report.metrics.bytes_output;
        job.local_reads += report.metrics.local_reads;
        job.remote_reads += report.metrics.remote_reads;
        job.kv.extend(report.kv.iter().copied());
        job.digest_acc = job.digest_acc.wrapping_add(report.digest.0);
        job.digest_count += report.digest.1;
        job.task_times.push(report.metrics.elapsed);
        if is_reduce {
            job.reduces_completed += 1;
        } else if matches!(job.spec.reduce, ReduceSpec::Shuffle { .. }) {
            // Only shuffles consume map outputs — and only shuffles can
            // lose one to a node death and need the folded contributions
            // back out; other reduce shapes skip the retention entirely.
            job.maps_completed += 1;
            let mut kv_counts: FxHashMap<(u64, u64), u64> = FxHashMap::default();
            for &pair in &report.kv {
                *kv_counts.entry(pair).or_default() += 1;
            }
            job.map_outputs.insert(
                report.task,
                MapOutput {
                    node: report.node,
                    pairs: report.kv.len() as u64,
                    kv_counts,
                    digest: report.digest,
                    bytes_read: report.metrics.bytes_read,
                    bytes_output: report.metrics.bytes_output,
                    local_reads: report.metrics.local_reads,
                    remote_reads: report.metrics.remote_reads,
                },
            );
        } else {
            job.maps_completed += 1;
        }

        let completion = TaskCompletion {
            job: report.job,
            task: report.task,
            node: report.node,
            kernel,
            is_reduce,
            elapsed: report.metrics.elapsed,
            work,
        };
        let has_override = self.job_scheds.contains_key(&job_id);
        let sched = sched_mut(&mut self.job_scheds, &mut self.scheduler, job_id);
        sched.on_task_completed(&completion);
        if has_override {
            // Job-level policies (deadline duration models, fair-share)
            // must not go blind on jobs carrying a task-level override:
            // the cluster scheduler observes every job's completions.
            self.scheduler.on_task_completed(&completion);
        }

        for (attempt, node) in others {
            if let Some(tt) = self.tts.get(&node) {
                let kill = KillTask {
                    job: report.job,
                    task: report.task,
                    attempt,
                };
                let (net, my, actor) = (self.net, self.node, tt.actor);
                net.unicast(ctx, my, node, actor, 128, kill);
            }
        }

        self.check_phase(ctx, JobId(job_id));
    }

    fn check_phase(&mut self, ctx: &mut Ctx<'_>, job_id: JobId) {
        let (phase, maps_done, reduces_done) = {
            let Some(job) = self.jobs.get(&job_id.0) else {
                return;
            };
            (
                job.phase,
                job.maps_completed == job.map_count,
                job.reduce_count > 0 && job.reduces_completed == job.reduce_count,
            )
        };
        match phase {
            Phase::MapRunning if maps_done => {
                let reduce = self.jobs.get(&job_id.0).map(|j| match &j.spec.reduce {
                    ReduceSpec::None => 0u8,
                    ReduceSpec::RpcAggregate { .. } => 1,
                    ReduceSpec::Shuffle { .. } => 2,
                });
                match reduce {
                    Some(0) | None => self.finalize(ctx, job_id),
                    Some(1) => {
                        // Lightweight reducer at the JobTracker.
                        let dur = {
                            let job = self.jobs.get_mut(&job_id.0).expect("job exists");
                            job.phase = Phase::ReduceRpc;
                            let ReduceSpec::RpcAggregate { reducer } = &job.spec.reduce else {
                                unreachable!()
                            };
                            let pairs = job.kv.len() as u64;
                            reducer.reduce_time(16 * pairs, pairs)
                        };
                        ctx.after(dur, job_timer_tag(KIND_REDUCE_RPC, job_id));
                    }
                    Some(_) => self.start_shuffle(ctx, job_id),
                }
            }
            // `maps_done` too: a node death during the reduce phase may
            // have invalidated a completed map (contributions subtracted,
            // re-execution pending). Finalizing on reduce completion alone
            // would ship a "succeeded" result missing that map's kv and
            // digest; the re-executed map's own report re-triggers this
            // check.
            Phase::ReduceRunning if reduces_done && maps_done => {
                self.finalize(ctx, job_id);
            }
            _ => {}
        }
    }

    fn start_shuffle(&mut self, ctx: &mut Ctx<'_>, job_id: JobId) {
        let Some(job) = self.jobs.get_mut(&job_id.0) else {
            return;
        };
        let ReduceSpec::Shuffle {
            reducers,
            write_output,
            ..
        } = &job.spec.reduce
        else {
            return;
        };
        let reducers = *reducers;
        let write_output = *write_output;
        let output_path = match &job.spec.output {
            OutputSink::Dfs { path, .. } => format!("{path}-reduced"),
            _ => format!("/{}-reduced", job.spec.name),
        };
        // Partition every map output evenly across reducers.
        let (outputs, total_pairs) = shuffle_outputs(&job.map_outputs);
        for r in 0..reducers {
            job.tasks.push(TaskState {
                work: TaskWork::Reduce {
                    fetches: reduce_fetches(&outputs, reducers, r),
                    pairs: total_pairs / reducers as u64,
                    write_output,
                    output_path: output_path.clone(),
                },
                hints: Vec::new(),
                attempts: 0,
                completed: false,
                running: Vec::new(),
                ran_on: None,
                is_reduce: true,
            });
            job.pending.push_back(TaskId(job.tasks.len() as u32 - 1));
        }
        job.reduce_count = reducers as u32;
        job.phase = Phase::ReduceRunning;
        ctx.stats().incr("mr.shuffles_started");
    }

    fn finalize(&mut self, ctx: &mut Ctx<'_>, job_id: JobId) {
        if let Some(job) = self.jobs.get_mut(&job_id.0) {
            if job.phase == Phase::Finalizing || job.phase == Phase::Done {
                return;
            }
            job.phase = Phase::Finalizing;
        }
        ctx.after(
            self.cfg.job_finalize_time,
            job_timer_tag(KIND_FINALIZE, job_id),
        );
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, job_id: JobId) {
        let (scheduler, node_throughput) = {
            let Some(job) = self.jobs.get(&job_id.0) else {
                return;
            };
            let kernel = job.spec.kernel.name();
            let sched = sched_mut(&mut self.job_scheds, &mut self.scheduler, job_id.0);
            (sched.name(), sched.throughput_estimates(kernel))
        };
        let Some(job) = self.jobs.get_mut(&job_id.0) else {
            return;
        };
        job.phase = Phase::Done;
        let now = ctx.now();
        // Flush the slot-seconds integral to the completion instant.
        job.slot_seconds += job.running_now as f64 * now.since(job.share_last_change).as_secs_f64();
        job.share_last_change = now;
        // Final aggregate for RpcAggregate jobs.
        let kv = match &job.spec.reduce {
            ReduceSpec::RpcAggregate { reducer } | ReduceSpec::Shuffle { reducer, .. } => {
                reducer.aggregate(&job.kv)
            }
            ReduceSpec::None => job.kv.clone(),
        };
        let result = JobResult {
            job: job_id,
            name: job.spec.name.clone(),
            succeeded: job.succeeded,
            error: job.error,
            elapsed: now - job.submitted,
            tenant: job.spec.tenant.clone(),
            weight: job.spec.weight,
            deadline: job.spec.deadline,
            deadline_met: job.spec.deadline.map(|d| now <= d),
            slot_seconds: job.slot_seconds,
            share_timeline: job.share_timeline.clone(),
            preempted_attempts: job.preempted_attempts,
            wasted_slot_seconds: job.wasted_slot_seconds,
            map_tasks: job.map_count,
            reduce_tasks: job.reduce_count,
            attempts: job.attempts_total,
            failed_attempts: job.failed_attempts,
            speculative_attempts: job.speculative_attempts,
            bytes_read: job.bytes_read,
            bytes_output: job.bytes_output,
            local_reads: job.local_reads,
            remote_reads: job.remote_reads,
            kv,
            digest: (job.digest_acc, job.digest_count),
            task_times: job.task_times.clone(),
            scheduler,
            dispatch_log: job.dispatch_log.clone(),
            node_throughput,
        };
        let client = job.client;
        // A per-job scheduler override dies with its job.
        self.job_scheds.remove(&job_id.0);
        ctx.stats().incr("mr.jobs_completed");
        let (net, my) = (self.net, self.node);
        net.unicast(ctx, my, client.1, client.0, 2048, JobComplete { result });
    }

    /// A node joined (registration of a previously-unknown TaskTracker):
    /// feed the schedulers and re-plan any job whose splits were computed
    /// against the old worker set but has not dispatched anything yet.
    fn handle_node_join(&mut self, ctx: &mut Ctx<'_>, node: NodeId) {
        ctx.stats().incr("mr.node_joins");
        self.scheduler.on_node_join(node);
        // audit:allow(map-order): per-job schedulers are mutually independent state; the join feed order across jobs is unobservable and no events issue here
        for sched in self.job_scheds.values_mut() {
            sched.on_node_join(node);
        }
        self.replan_unassigned(ctx);
    }

    /// Re-plans the splits of every job that is running its map phase but
    /// has dispatched nothing — its plan predates the current worker set,
    /// so rebuilding it lets the join participate from the first wave.
    /// Jobs with attempts in flight are left alone: their pending queue is
    /// simply drained onto the new node by heartbeat dispatch.
    fn replan_unassigned(&mut self, ctx: &mut Ctx<'_>) {
        let mut job_ids: Vec<u32> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.phase == Phase::MapRunning && j.attempts_total == 0)
            .map(|(&id, _)| id)
            .collect();
        job_ids.sort_unstable();
        for job_id in job_ids {
            let input = {
                let Some(job) = self.jobs.get_mut(&job_id) else {
                    continue;
                };
                job.tasks.clear();
                job.pending.clear();
                job.map_count = 0;
                // No attempts ever dispatched (the replan filter), so the
                // active-task count resets with the table.
                job.running_tasks = 0;
                job.spec.input.clone()
            };
            ctx.stats().incr("mr.jobs_replanned");
            match input {
                JobInput::Synthetic { total_units } => {
                    self.build_synthetic_tasks(JobId(job_id), total_units);
                }
                JobInput::File { path, .. } => {
                    // Re-fetch locations: the fresh view also reflects any
                    // re-replication since the original plan.
                    if let Some(job) = self.jobs.get_mut(&job_id) {
                        job.phase = Phase::WaitingLocations;
                    }
                    let (dfs, node) = (self.dfs.clone(), self.node);
                    dfs.get_locations(ctx, node, &path, job_id as u64);
                }
            }
        }
    }

    /// Declares silent TaskTrackers dead and re-queues their work. The
    /// sweep drains the expiry heap instead of walking every tracker: only
    /// trackers whose recorded deadline elapsed surface, so an all-quiet
    /// tick costs O(1) regardless of cluster size. The old full scan
    /// visited ascending node ids; the drained set is sorted (and deduped
    /// — resurrections can leave superseded entries) so the newly-dead are
    /// processed in exactly the historical order, keeping traces
    /// byte-identical.
    fn check_liveness(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.decay_blacklist(now);
        let mut newly_fenced: Vec<(u32, u32, u32)> = Vec::new();
        let tts = &self.tts;
        let window = self.cfg.tt_dead_after;
        // Expired ⇔ the authoritative deadline passed: `last + window <
        // now` is the old `now - last > window` rule verbatim, so a
        // tracker whose grace ends exactly at `now` survives this tick.
        let mut newly_dead = self.expiry.expired(now, |node| {
            let tt = tts.get(&node)?;
            if tt.dead {
                return None;
            }
            Some(tt.last_heartbeat + window)
        });
        newly_dead.sort_unstable();
        newly_dead.dedup();
        for &node in &newly_dead {
            self.tts
                .get_mut(&node)
                .expect("expired keys are tracked")
                .dead = true;
            self.note_tt_dead(node);
        }
        for node in newly_dead {
            ctx.stats().incr("mr.tasktrackers_declared_dead");
            self.scheduler.on_node_dead(node);
            // audit:allow(map-order): per-job schedulers are mutually independent state; the observation feed order across jobs is unobservable and no events issue here
            for sched in self.job_scheds.values_mut() {
                sched.on_node_dead(node);
            }
            let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
            job_ids.sort_unstable();
            for job_id in job_ids {
                let Some(job) = self.jobs.get_mut(&job_id) else {
                    continue;
                };
                if matches!(job.phase, Phase::Done | Phase::Finalizing) {
                    continue;
                }
                let needs_shuffle = matches!(job.spec.reduce, ReduceSpec::Shuffle { .. })
                    && job.phase != Phase::Done;
                let mut vanished = 0i64;
                for (i, ts) in job.tasks.iter_mut().enumerate() {
                    let tid = TaskId(i as u32);
                    // Running attempts on the dead node vanish — and are
                    // *fenced*: should the node turn out to be alive
                    // (heartbeat loss, partition), the zombie executions'
                    // eventual reports must not fold a second copy of the
                    // work into the job.
                    let before = ts.running.len();
                    ts.running.retain(|&(a, n, _)| {
                        if n != node {
                            return true;
                        }
                        newly_fenced.push((job_id, i as u32, a));
                        false
                    });
                    vanished += (before - ts.running.len()) as i64;
                    if before != ts.running.len() && !ts.completed && ts.running.is_empty() {
                        job.pending.push_back(tid);
                        // Active → inactive: its last attempt just vanished.
                        job.running_tasks -= 1;
                    }
                    // Completed map outputs on the dead node are lost for
                    // unfinished shuffles: re-execute those maps — during
                    // the reduce phase too (reduce dispatch is then held
                    // until the re-executed outputs land; in-flight
                    // fetches off the dead node abort and requeue). The
                    // lost attempt's folded contributions are subtracted
                    // so re-execution keeps exactly-once accounting.
                    if needs_shuffle
                        && matches!(job.phase, Phase::MapRunning | Phase::ReduceRunning)
                        && ts.completed
                        && ts.ran_on == Some(node)
                        && !ts.is_reduce
                    {
                        ts.completed = false;
                        ts.ran_on = None;
                        if !ts.running.is_empty() {
                            // Defensive: a completed task's running list is
                            // cleared at completion, so this stays zero —
                            // but un-completing a task with attempts in
                            // flight would make it active again.
                            job.running_tasks += 1;
                        }
                        job.maps_completed -= 1;
                        if let Some(mo) = job.map_outputs.remove(&tid) {
                            job.bytes_read -= mo.bytes_read;
                            job.bytes_output -= mo.bytes_output;
                            job.local_reads -= mo.local_reads;
                            job.remote_reads -= mo.remote_reads;
                            job.digest_acc = job.digest_acc.wrapping_sub(mo.digest.0);
                            job.digest_count -= mo.digest.1;
                            // Multiset subtraction in one pass (shuffle
                            // aggregates are order-independent, so retain
                            // is safe; per-pair scans would be quadratic).
                            let mut drop = mo.kv_counts;
                            job.kv.retain(|p| match drop.get_mut(p) {
                                Some(c) if *c > 0 => {
                                    *c -= 1;
                                    false
                                }
                                _ => true,
                            });
                        }
                        job.pending.push_back(tid);
                    }
                }
                job.note_share(now, -vanished);
            }
        }
        for key in newly_fenced {
            self.fenced.insert(key);
        }
        self.check_watchdog(ctx, now);
    }

    /// Job-level liveness watchdog: a job with *nothing running* and no
    /// dispatch or completion for [`MrConfig::job_stall_timeout`] cannot
    /// make progress (unservable input, every candidate node dead or
    /// blacklisted) and is terminated with a typed
    /// [`JobError::Stalled`] instead of hanging the session. Jobs with
    /// attempts in flight are never declared stalled — slow tasks are the
    /// I/O watchdogs' and speculation's problem, not this one's.
    fn check_watchdog(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        let Some(timeout) = self.cfg.job_stall_timeout else {
            return;
        };
        let mut stalled: Vec<u32> = self
            .jobs
            .iter()
            .filter(|(_, j)| !matches!(j.phase, Phase::Done | Phase::Finalizing))
            .filter(|(_, j)| j.running_now == 0 && now.since(j.last_progress) > timeout)
            .map(|(&id, _)| id)
            .collect();
        stalled.sort_unstable();
        for id in stalled {
            if let Some(job) = self.jobs.get_mut(&id) {
                job.succeeded = false;
                job.error = Some(JobError::Stalled {
                    idle_for: now.since(job.last_progress),
                });
            }
            ctx.stats().incr("mr.jobs_stalled");
            self.finalize(ctx, JobId(id));
        }
    }
}

impl Actor for JobTracker {
    fn name(&self) -> String {
        "mr.jobtracker".into()
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                ctx.after(self.cfg.heartbeat_interval, TIMER_LIVENESS);
            }
            Event::Timer {
                tag: TIMER_LIVENESS,
                ..
            } => {
                self.check_liveness(ctx);
                ctx.rearm_after(self.cfg.heartbeat_interval, TIMER_LIVENESS);
            }
            Event::Timer { tag, .. } => {
                let (kind, job_id) = unpack_job_timer(tag);
                match kind {
                    KIND_INIT => {
                        let input = self.jobs.get(&job_id.0).map(|j| j.spec.input.clone());
                        match input {
                            Some(JobInput::File { path, .. }) => {
                                if let Some(job) = self.jobs.get_mut(&job_id.0) {
                                    job.phase = Phase::WaitingLocations;
                                }
                                let (dfs, node) = (self.dfs.clone(), self.node);
                                dfs.get_locations(ctx, node, &path, job_id.0 as u64);
                            }
                            Some(JobInput::Synthetic { total_units }) => {
                                self.build_synthetic_tasks(job_id, total_units);
                            }
                            None => {}
                        }
                    }
                    KIND_REDUCE_RPC => {
                        if let Some(job) = self.jobs.get_mut(&job_id.0) {
                            job.reduce_count = 1;
                            job.reduces_completed = 1;
                        }
                        self.finalize(ctx, job_id);
                    }
                    KIND_FINALIZE => self.complete(ctx, job_id),
                    _ => {}
                }
            }
            Event::Msg { msg, .. } => {
                if msg.is::<SubmitJob>() {
                    let submit = msg.downcast::<SubmitJob>().expect("checked");
                    let id = self.next_job;
                    self.next_job += 1;
                    // A job carrying its own policy gets a private,
                    // job-lifetime scheduler instance.
                    if let Some(policy) = submit.spec.scheduler {
                        self.job_scheds
                            .insert(id, build_scheduler(policy, &self.cfg));
                    }
                    self.jobs.insert(
                        id,
                        JobState {
                            spec: submit.spec,
                            client: (submit.reply, submit.reply_node),
                            submitted: ctx.now(),
                            phase: Phase::Initializing,
                            tasks: Vec::new(),
                            pending: VecDeque::new(),
                            map_count: 0,
                            reduce_count: 0,
                            maps_completed: 0,
                            reduces_completed: 0,
                            attempts_total: 0,
                            failed_attempts: 0,
                            speculative_attempts: 0,
                            bytes_read: 0,
                            bytes_output: 0,
                            local_reads: 0,
                            remote_reads: 0,
                            kv: Vec::new(),
                            digest_acc: 0,
                            digest_count: 0,
                            task_times: Vec::new(),
                            dispatch_log: Vec::new(),
                            map_outputs: FxHashMap::default(),
                            succeeded: true,
                            error: None,
                            last_progress: ctx.now(),
                            running_now: 0,
                            share_last_change: ctx.now(),
                            slot_seconds: 0.0,
                            share_timeline: Vec::new(),
                            preempted_attempts: 0,
                            wasted_slot_seconds: 0.0,
                            running_tasks: 0,
                        },
                    );
                    ctx.stats().incr("mr.jobs_submitted");
                    ctx.after(self.cfg.job_init_time, job_timer_tag(KIND_INIT, JobId(id)));
                } else if msg.is::<LocationsReply>() {
                    let reply = msg.downcast::<LocationsReply>().expect("checked");
                    let job_id = JobId(reply.tag as u32);
                    match reply.view {
                        Some(view) => self.build_file_tasks(job_id, &view),
                        None => {
                            if let Some(job) = self.jobs.get_mut(&job_id.0) {
                                job.succeeded = false;
                            }
                            self.finalize(ctx, job_id);
                        }
                    }
                } else if msg.is::<TtHeartbeat>() {
                    let hb = msg.downcast::<TtHeartbeat>().expect("checked");
                    ctx.stats().incr("mr.heartbeats");
                    let now = ctx.now();
                    // A heartbeat from a tracker we declared dead means the
                    // declaration was a false positive (heartbeat loss, or
                    // a healed partition): resurrect it. Its pre-death
                    // attempts were requeued and fenced at declaration
                    // time, so any stale reports this heartbeat carries
                    // are rejected in `handle_report` — the node rejoins
                    // with a clean slate. Genuinely crashed trackers never
                    // heartbeat again, so this path is unreachable outside
                    // chaos runs.
                    let is_new = !self.tts.contains_key(&hb.node);
                    let entry = self.tts.entry(hb.node).or_insert(TtInfo {
                        actor: ActorId::ENGINE,
                        last_heartbeat: now,
                        dead: false,
                        fail_score: 0,
                    });
                    entry.last_heartbeat = now;
                    let resurrected = entry.dead;
                    if is_new || resurrected {
                        // (Re-)entering liveness tracking: one fresh heap
                        // entry at the current deadline; any superseded
                        // entry from a previous incarnation is dropped at
                        // pop time. Heartbeats from an already-live
                        // tracker never touch the heap.
                        self.expiry.schedule(now + self.cfg.tt_dead_after, hb.node);
                        self.note_tt_live(hb.node);
                    }
                    if resurrected {
                        let entry = self.tts.get_mut(&hb.node).expect("just inserted");
                        entry.dead = false;
                        ctx.stats().incr("mr.tt_resurrections");
                        self.scheduler.on_node_join(hb.node);
                        // audit:allow(map-order): per-job schedulers are mutually independent state; the join feed order across jobs is unobservable and no events issue here
                        for sched in self.job_scheds.values_mut() {
                            sched.on_node_join(hb.node);
                        }
                    }
                    if is_new {
                        // Discovery by heartbeat alone (no registration
                        // observed): still a join for the schedulers.
                        self.handle_node_join(ctx, hb.node);
                    }
                    self.scheduler.on_heartbeat(hb.node, hb.free_slots, now);
                    // audit:allow(map-order): per-job schedulers are mutually independent state; the heartbeat feed order across jobs is unobservable and no events issue here
                    for sched in self.job_scheds.values_mut() {
                        sched.on_heartbeat(hb.node, hb.free_slots, now);
                    }
                    for report in hb.completed {
                        self.handle_report(ctx, report);
                    }
                    if let Some(tt) = self.tts.get(&hb.node) {
                        if !tt.dead {
                            self.schedule_on(ctx, hb.node, hb.free_slots);
                        }
                    }
                } else if let Some(reg) = msg.peek::<RegisterTaskTracker>() {
                    let (node, actor) = (reg.node, reg.actor);
                    let is_new = !self.tts.contains_key(&node);
                    self.register_tt_at(node, actor, ctx.now());
                    if is_new {
                        self.handle_node_join(ctx, node);
                    }
                } else if msg.is::<PreloadDone>() {
                    // Ignored: preloads are driven by clients.
                }
            }
        }
    }
}

/// Registers the TaskTracker actor for a node — delivered by `deploy_mr`
/// right after spawning, because heartbeats alone cannot carry `ActorId`s
/// through the typed fabric.
#[derive(Debug, Clone, Copy)]
pub struct RegisterTaskTracker {
    /// Worker node.
    pub node: NodeId,
    /// Its TaskTracker actor.
    pub actor: ActorId,
}

impl JobTracker {
    /// Installs the TaskTracker actor for `node`. `now` seeds the liveness
    /// clock: a node registering mid-session must not be declared dead
    /// before its first heartbeat (at deploy `now` is zero, matching the
    /// historical behavior exactly).
    pub(crate) fn register_tt_at(&mut self, node: NodeId, actor: ActorId, now: SimTime) {
        if let Some(t) = self.tts.get_mut(&node) {
            t.actor = actor;
            return;
        }
        self.tts.insert(
            node,
            TtInfo {
                actor,
                last_heartbeat: now,
                dead: false,
                fail_score: 0,
            },
        );
        // Enter liveness tracking with a full silence window from `now` —
        // a tracker registering one tick before the sweep fires must not
        // be declared dead before it ever had a chance to heartbeat.
        self.expiry.schedule(now + self.cfg.tt_dead_after, node);
        self.note_tt_live(node);
    }
}
