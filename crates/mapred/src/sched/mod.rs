//! The pluggable scheduling subsystem.
//!
//! Scheduling used to be a two-arm `match` inlined in the JobTracker;
//! this module extracts it behind the [`Scheduler`] trait so policies are
//! first-class and extensible. The JobTracker *feeds* the scheduler
//! observations — heartbeats, task starts, completions (with durations and
//! work sizes), node deaths — and *asks* it for decisions: split planning
//! ([`Scheduler::plan_splits`]), dispatch ([`Scheduler::pick_task`]),
//! speculative-copy placement ([`Scheduler::pick_straggler`]) and
//! preemptive slot reclamation ([`Scheduler::reclaim`]). Policies
//! never mutate runtime state and never emit simulation events, so swapping
//! a policy cannot perturb anything but the decisions themselves — the
//! property the trace-equivalence tests pin down for the ported
//! [`Fifo`] and [`LocalityFirst`] implementations.
//!
//! Shipped implementations:
//!
//! * [`Fifo`] — dispatch in submission order, placement-blind (the
//!   ablation baseline);
//! * [`LocalityFirst`] — prefer tasks with an input replica on the
//!   requesting node (Hadoop's default, as the paper ran it);
//! * [`AdaptiveHetero`] — heterogeneity-aware dispatch for mixed
//!   accelerated/plain clusters (the paper's §V open issue): per-node,
//!   per-kernel throughput learned online, demand-weighted splits, and a
//!   tail guard keeping the last tasks off slow nodes.

mod adaptive;
mod deadline;
mod fair;
mod fifo;
mod locality;
#[cfg(test)]
mod props;

pub use adaptive::AdaptiveHetero;
pub use deadline::DeadlineSlack;
pub use fair::FairShare;
pub use fifo::Fifo;
pub use locality::LocalityFirst;

use accelmr_des::{FxHashMap, SimDuration, SimTime};
use accelmr_net::NodeId;

use crate::config::{JobId, MrConfig, PreemptionTuning, SchedulerPolicy, TaskId};
use crate::job::TaskWork;

/// Immutable snapshot of one task, handed to scheduling decisions.
#[derive(Clone, Copy, Debug)]
pub struct TaskView<'a> {
    /// Nodes holding input replicas (locality hint; empty for synthetic
    /// and reduce tasks).
    pub hints: &'a [NodeId],
    /// `true` for reduce tasks.
    pub is_reduce: bool,
    /// `true` once an attempt has succeeded.
    pub completed: bool,
    /// Running attempts: `(attempt, node, started)`.
    pub running: &'a [(u32, NodeId, SimTime)],
    /// Work size: input bytes (file tasks), units (synthetic tasks), or
    /// fetch bytes (reduce tasks).
    pub size: u64,
}

/// On-demand task access for scheduling decisions. The JobTracker hands
/// views out through this trait instead of materializing a `Vec<TaskView>`
/// per decision: most decisions touch a handful of tasks (or none — the
/// job-level pick mostly reads the precomputed aggregates), so building
/// O(tasks) snapshots per free heartbeat slot was the dominant per-event
/// cost at 10k nodes. Test harnesses keep constructing plain
/// `Vec<TaskView>` / `[TaskView]` values — both implement the trait.
pub trait TaskLookup: std::fmt::Debug {
    /// Number of tasks (views are indexed by [`TaskId`]).
    fn len(&self) -> usize;

    /// `true` when the job has no tasks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The snapshot of task `idx`. Panics when out of bounds.
    fn get(&self, idx: usize) -> TaskView<'_>;
}

impl<'a> TaskLookup for Vec<TaskView<'a>> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn get(&self, idx: usize) -> TaskView<'_> {
        self[idx]
    }
}

impl<'a, const N: usize> TaskLookup for [TaskView<'a>; N] {
    fn len(&self) -> usize {
        N
    }

    fn get(&self, idx: usize) -> TaskView<'_> {
        self[idx]
    }
}

/// Everything a scheduler may inspect when deciding for one job on one
/// heartbeat. Built by the JobTracker per decision; borrows its state.
/// Task-level decisions ([`Scheduler::pick_task`] /
/// [`Scheduler::pick_straggler`]) receive one view; the job-level decision
/// ([`Scheduler::pick_job`]) receives a slice covering every active job.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// The job being scheduled.
    pub job: JobId,
    /// The job's map-kernel name (the per-kernel-family key adaptive
    /// throughput learning uses).
    pub kernel: &'a str,
    /// The job's tenant (multi-tenant fairness accounting; `"default"`
    /// when unset).
    pub tenant: &'a str,
    /// The job's fair-share weight (> 0).
    pub weight: f64,
    /// The job's completion deadline, if any.
    pub deadline: Option<SimTime>,
    /// When the job was submitted (job-level FIFO / aging decisions).
    pub submitted: SimTime,
    /// Whether this job may take another dispatch this heartbeat. In
    /// [`Scheduler::pick_job`] slices, ineligible views are present for
    /// cross-job accounting (tenant running-slot shares) only — policies
    /// must never return them. Always `true` in task-level decisions.
    pub eligible: bool,
    /// Total live map slots across the cluster (remaining-work and wave
    /// estimates).
    pub cluster_slots: usize,
    /// Pending (not yet dispatched) task ids, in queue order. Re-queued
    /// tasks (failures, node deaths) sit at the tail; the queue is never
    /// reordered by the runtime, so index 0 is the oldest entry.
    pub pending: &'a [TaskId],
    /// All tasks of the job, indexed by [`TaskId`].
    pub tasks: &'a dyn TaskLookup,
    /// Attempts of this job currently occupying slots (running attempts
    /// summed over all tasks) — the usage metric weighted fair sharing
    /// bills to the job's tenant. Precomputed by the view builder (the
    /// JobTracker maintains it incrementally) so job-level picks never
    /// scan the task table.
    pub running_slots: usize,
    /// Tasks not yet completed that have at least one running attempt —
    /// the in-flight work counted by remaining-time estimates (and the
    /// speculation candidates). Precomputed like
    /// [`running_slots`](SchedView::running_slots).
    pub running_incomplete: usize,
    /// Durations of completed attempts (straggler thresholding).
    pub completed_task_times: &'a [SimDuration],
    /// Configured map slots per TaskTracker.
    pub slots_per_node: usize,
}

/// The aggregate counts a [`SchedView`] carries precomputed
/// ([`running_slots`](SchedView::running_slots),
/// [`running_incomplete`](SchedView::running_incomplete)), derived from a
/// task slice — for view builders that don't maintain the counts
/// incrementally (test harnesses, property drivers).
#[cfg(test)]
pub(crate) fn view_counts(tasks: &dyn TaskLookup) -> (usize, usize) {
    let mut running_slots = 0;
    let mut running_incomplete = 0;
    for i in 0..tasks.len() {
        let t = tasks.get(i);
        running_slots += t.running.len();
        if !t.completed && !t.running.is_empty() {
            running_incomplete += 1;
        }
    }
    (running_slots, running_incomplete)
}

/// Split-planning request: how should a job's input be carved into map
/// tasks?
#[derive(Debug)]
pub struct SplitRequest<'a> {
    /// The job being planned.
    pub job: JobId,
    /// The job's map-kernel name.
    pub kernel: &'a str,
    /// Total work to split: whole records (file inputs) or units
    /// (synthetic inputs).
    pub total: u64,
    /// The user's explicit task count, if any (`JobBuilder::map_tasks`).
    pub requested_tasks: Option<usize>,
    /// Default task count: one per live map slot (the paper's
    /// `NumMappers`).
    pub default_tasks: usize,
    /// Live worker nodes, ascending.
    pub live_nodes: &'a [NodeId],
    /// Configured map slots per TaskTracker.
    pub slots_per_node: usize,
}

/// A split plan: how many map tasks, and how the work divides among them.
#[derive(Clone, Debug, PartialEq)]
pub enum SplitPlan {
    /// `tasks` equal splits (remainder spread one-per-task from the
    /// front) — the paper's `split = FileSize / NumMappers`.
    Uniform {
        /// Number of map tasks.
        tasks: usize,
    },
    /// One split per weight, sized proportionally — heterogeneous split
    /// sizing for clusters where nodes differ in throughput.
    Weighted {
        /// Relative split sizes; must be non-empty, entries > 0.
        weights: Vec<f64>,
    },
}

impl SplitPlan {
    /// Divides `total` work items across the planned tasks. Uniform plans
    /// reproduce the historical `base + (i < extra)` arithmetic exactly;
    /// weighted plans use largest-remainder apportionment.
    pub fn split(&self, total: u64) -> Vec<u64> {
        match self {
            SplitPlan::Uniform { tasks } => {
                let tasks = (*tasks).max(1);
                let base = total / tasks as u64;
                let extra = (total % tasks as u64) as usize;
                (0..tasks).map(|i| base + u64::from(i < extra)).collect()
            }
            SplitPlan::Weighted { weights } => {
                assert!(!weights.is_empty(), "weighted plan needs weights");
                let sum: f64 = weights.iter().sum();
                assert!(sum > 0.0, "weighted plan needs positive weights");
                let mut counts: Vec<u64> = Vec::with_capacity(weights.len());
                let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
                let mut assigned = 0u64;
                for (i, w) in weights.iter().enumerate() {
                    let exact = total as f64 * w / sum;
                    let floor = exact.floor() as u64;
                    counts.push(floor);
                    assigned += floor;
                    remainders.push((i, exact - floor as f64));
                }
                // Hand the remainder out by largest fractional part,
                // ties broken by task index (deterministic).
                remainders.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                let mut left = total - assigned;
                for &(i, _) in &remainders {
                    if left == 0 {
                        break;
                    }
                    counts[i] += 1;
                    left -= 1;
                }
                counts
            }
        }
    }
}

/// One completed (successful, first-winner) task attempt, observed by the
/// scheduler.
#[derive(Debug)]
pub struct TaskCompletion<'a> {
    /// Owning job.
    pub job: JobId,
    /// The task.
    pub task: TaskId,
    /// Node the winning attempt ran on.
    pub node: NodeId,
    /// The job's map-kernel name.
    pub kernel: &'a str,
    /// `true` for reduce tasks.
    pub is_reduce: bool,
    /// Wall time of the attempt.
    pub elapsed: SimDuration,
    /// Work performed: bytes read (file/reduce tasks) or units (synthetic).
    pub work: u64,
}

/// A per-node throughput estimate, as learned by an adaptive scheduler
/// (work units per second for one kernel family).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeThroughput {
    /// The node.
    pub node: NodeId,
    /// Estimated throughput, work units (bytes or samples) per second.
    pub throughput: f64,
    /// Completed attempts folded into the estimate.
    pub samples: u64,
}

/// One attempt a policy asks the JobTracker to preempt: the named attempt
/// is killed on its node, the task re-enters the victim job's pending
/// queue, and the freed slot goes (at the node's next heartbeat) to the
/// named beneficiary — whose tenant is charged the victim's discarded
/// slot-seconds, so reclaiming is never free for the job that forces it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReclaimVictim {
    /// Job owning the victim attempt.
    pub job: JobId,
    /// Task whose attempt is killed (requeued unless another attempt of
    /// the same task is still running).
    pub task: TaskId,
    /// The attempt number to kill — fenced so a late completion report
    /// from it is rejected.
    pub attempt: u32,
    /// The job on whose behalf the slot is reclaimed. Its `slot_seconds`
    /// absorb the victim's discarded runtime (reported as
    /// [`JobResult::wasted_slot_seconds`](crate::JobResult::wasted_slot_seconds)).
    pub beneficiary: JobId,
}

/// Wasted-work bookkeeping backing [`Scheduler::reclaim`] implementations:
/// enforces the [`PreemptionTuning`] budget (per-job kill cap, minimum
/// victim age, per-task re-kill cooldown) across the scheduler's lifetime.
#[derive(Debug)]
pub(crate) struct PreemptionBudget {
    /// The configured budget knobs.
    pub(crate) tuning: PreemptionTuning,
    /// Preemption kills suffered per victim job (lifetime).
    kills_by_job: FxHashMap<u32, u32>,
    /// Last preemption instant per `(job, task)` — the cooldown key.
    last_kill: FxHashMap<(u32, u32), SimTime>,
}

impl PreemptionBudget {
    pub(crate) fn new(tuning: PreemptionTuning) -> Self {
        PreemptionBudget {
            tuning,
            kills_by_job: FxHashMap::default(),
            last_kill: FxHashMap::default(),
        }
    }

    /// Whether the budget permits killing an attempt of `(job, task)` now.
    /// Age screening is [`reclaim_candidates`]' job; this checks the kill
    /// cap and the per-task cooldown.
    pub(crate) fn allows(&self, job: JobId, task: TaskId, now: SimTime) -> bool {
        if !self.tuning.enabled() {
            return false;
        }
        if self.kills_by_job.get(&job.0).copied().unwrap_or(0) >= self.tuning.max_kills_per_job {
            return false;
        }
        match self.last_kill.get(&(job.0, task.0)) {
            Some(&last) => now.since(last) >= self.tuning.cooldown,
            None => true,
        }
    }

    /// Records a granted kill against the budget.
    pub(crate) fn note_kill(&mut self, job: JobId, task: TaskId, now: SimTime) {
        *self.kills_by_job.entry(job.0).or_insert(0) += 1;
        self.last_kill.insert((job.0, task.0), now);
    }
}

/// Preemptible attempts on `node`, youngest-first, each paired with how
/// long it has been running — the shared victim ordering ([`FairShare`]
/// and [`DeadlineSlack`] differ only in *which jobs* may be raided, not in
/// how victims are ranked within them; the elapsed time lets a policy with
/// a duration model additionally skip nearly-finished victims).
///
/// A task qualifies only when it is an incomplete **map** with exactly one
/// running attempt, that attempt runs on `node`, and it has been running
/// at least `min_age`. Reduces are never preempted (their fetch state is
/// not idempotently requeueable the way map attempts are), and killing one
/// copy of a speculative pair frees a slot without freeing any task to
/// requeue — the surviving copy still owns the task. Youngest-first
/// (latest `started` wins, ties to the lowest `(job, task)`) minimizes the
/// discarded work per reclaimed slot.
pub(crate) fn reclaim_candidates(
    views: &[SchedView<'_>],
    node: NodeId,
    now: SimTime,
    min_age: SimDuration,
) -> Vec<(SimDuration, ReclaimVictim)> {
    let mut out: Vec<(SimTime, ReclaimVictim)> = Vec::new();
    for v in views {
        for i in 0..v.tasks.len() {
            let t = v.tasks.get(i);
            if t.is_reduce || t.completed || t.running.len() != 1 {
                continue;
            }
            let (attempt, run_node, started) = t.running[0];
            if run_node != node || now.since(started) < min_age {
                continue;
            }
            out.push((
                started,
                ReclaimVictim {
                    job: v.job,
                    task: TaskId(i as u32),
                    attempt,
                    // Placeholder; the policy stamps the real beneficiary.
                    beneficiary: v.job,
                },
            ));
        }
    }
    out.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(a.1.job.cmp(&b.1.job))
            .then(a.1.task.cmp(&b.1.task))
    });
    out.into_iter()
        .map(|(started, v)| (now.since(started), v))
        .collect()
}

/// A task-scheduling policy. The JobTracker feeds it observations and asks
/// it for decisions; implementations are pure decision-makers — they hold
/// whatever learning state they like but never touch runtime state.
pub trait Scheduler: Send {
    /// Policy name (results, traces, benches).
    fn name(&self) -> &'static str;

    /// Picks the job whose task should take the next free slot on `node` —
    /// the *job-level* half of the two-level (job → task) dispatch
    /// decision. `views` covers every active job; entries with
    /// [`SchedView::eligible`] `false` are present for cross-job
    /// accounting only and must not be returned. `None` leaves the slot
    /// empty this heartbeat.
    ///
    /// The default picks the lowest eligible job id — exactly Hadoop's
    /// FIFO job order, proven event-for-event equivalent to the
    /// pre-`pick_job` dispatch loop by the golden multi-job traces
    /// (`job_level_dispatch_is_trace_equivalent`).
    ///
    /// Job-level decisions always go to the *cluster* scheduler; a per-job
    /// override ([`JobSpec::scheduler`](crate::JobSpec::scheduler)) only
    /// governs decisions within its own job.
    fn pick_job(&mut self, views: &[SchedView<'_>], node: NodeId) -> Option<JobId> {
        let _ = node;
        views.iter().filter(|v| v.eligible).map(|v| v.job).min()
    }

    /// Plans how a job's input splits into map tasks. The default honors
    /// the user's task count (or one task per live slot) with uniform
    /// sizes — the historical behavior.
    fn plan_splits(&mut self, req: &SplitRequest<'_>) -> SplitPlan {
        SplitPlan::Uniform {
            tasks: req.requested_tasks.unwrap_or(req.default_tasks).max(1),
        }
    }

    /// Picks the pending task (an index into `view.pending`) to dispatch
    /// on `node`, or `None` to leave the node's slot empty this heartbeat
    /// (admission control: an adaptive policy may hold the queue tail back
    /// from slow nodes).
    fn pick_task(&mut self, view: &SchedView<'_>, node: NodeId) -> Option<usize>;

    /// Picks a running task to speculatively duplicate on `node` (the
    /// JobTracker only asks when speculation is enabled and the node has
    /// free slots after regular dispatch).
    fn pick_straggler(
        &mut self,
        view: &SchedView<'_>,
        node: NodeId,
        now: SimTime,
    ) -> Option<TaskId>;

    /// Names running attempts on `node` to kill and requeue so their slots
    /// can be re-dispatched — asked only when preemption is enabled
    /// ([`PreemptionTuning::enabled`]) and `node` reported zero free slots
    /// after regular dispatch. Victims must be incomplete sole-attempt map
    /// tasks running on `node` (see [`ReclaimVictim`]); the JobTracker
    /// kills each, fences the attempt, requeues the task, and bills the
    /// discarded slot-seconds to the named beneficiary.
    ///
    /// The default reclaims nothing, so non-preemptive policies are
    /// byte-identical to the pre-hook runtime (pinned by the golden
    /// traces). Like [`pick_job`](Scheduler::pick_job), reclaim decisions
    /// always go to the *cluster* scheduler — per-job overrides only
    /// govern decisions within their own job.
    fn reclaim(
        &mut self,
        views: &[SchedView<'_>],
        node: NodeId,
        now: SimTime,
    ) -> Vec<ReclaimVictim> {
        let _ = (views, node, now);
        Vec::new()
    }

    /// A task attempt was dispatched to `node`.
    fn on_task_started(&mut self, job: JobId, task: TaskId, node: NodeId, now: SimTime) {
        let _ = (job, task, node, now);
    }

    /// A task completed successfully (first winner only; speculative
    /// losers and zombies are not reported).
    fn on_task_completed(&mut self, completion: &TaskCompletion<'_>) {
        let _ = completion;
    }

    /// A TaskTracker heartbeat arrived.
    fn on_heartbeat(&mut self, node: NodeId, free_slots: usize, now: SimTime) {
        let _ = (node, free_slots, now);
    }

    /// A TaskTracker was declared dead (heartbeat silence).
    fn on_node_dead(&mut self, node: NodeId) {
        let _ = node;
    }

    /// A node joined the cluster (first registration, including at deploy,
    /// and mid-session joins under dynamic membership). Policies that
    /// learn per-node state must treat the node as fresh: a recycled node
    /// id must not inherit estimates from a previous incarnation.
    fn on_node_join(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Per-node throughput estimates for `kernel`, if this policy learns
    /// them (sorted by node; empty otherwise). Reported in
    /// [`JobResult::node_throughput`](crate::JobResult::node_throughput).
    fn throughput_estimates(&self, kernel: &str) -> Vec<NodeThroughput> {
        let _ = kernel;
        Vec::new()
    }
}

/// Instantiates the [`Scheduler`] for a policy.
pub fn build_scheduler(policy: SchedulerPolicy, cfg: &MrConfig) -> Box<dyn Scheduler> {
    match policy {
        SchedulerPolicy::Fifo => Box::new(Fifo::new(cfg)),
        SchedulerPolicy::LocalityFirst => Box::new(LocalityFirst::new(cfg)),
        SchedulerPolicy::Adaptive(tuning) => Box::new(AdaptiveHetero::new(tuning, cfg)),
        SchedulerPolicy::FairShare => Box::new(FairShare::new(cfg)),
        SchedulerPolicy::DeadlineSlack => Box::new(DeadlineSlack::new(cfg)),
    }
}

/// The historical locality-preferring task pick, shared by
/// [`LocalityFirst`] and the job-level policies ([`FairShare`],
/// [`DeadlineSlack`]): the oldest pending task with an input replica on
/// the requesting node, falling back to the queue front.
pub(crate) fn locality_pick(view: &SchedView<'_>, node: NodeId) -> Option<usize> {
    if view.pending.is_empty() {
        return None;
    }
    Some(
        view.pending
            .iter()
            .position(|t| view.tasks.get(t.0 as usize).hints.contains(&node))
            .unwrap_or(0),
    )
}

/// Work size of a task (bytes for file/reduce tasks, units for synthetic).
pub(crate) fn task_work_size(work: &TaskWork) -> u64 {
    match work {
        TaskWork::MapRange { start, end, .. } => end - start,
        TaskWork::MapUnits { units, .. } => *units,
        TaskWork::Reduce { fetches, .. } => fetches.iter().map(|&(_, b)| b).sum(),
    }
}

/// The historical straggler rule, shared by [`Fifo`] and
/// [`LocalityFirst`]: a single-attempt running task whose elapsed time
/// exceeds `slowdown ×` the mean completed-attempt time, not already
/// running on the requesting node; the worst offender (largest elapsed)
/// wins.
pub(crate) fn default_straggler(
    view: &SchedView<'_>,
    node: NodeId,
    now: SimTime,
    slowdown: f64,
) -> Option<TaskId> {
    if view.completed_task_times.is_empty() {
        return None;
    }
    let mean_ns: f64 = view
        .completed_task_times
        .iter()
        .map(|d| d.as_nanos() as f64)
        .sum::<f64>()
        / view.completed_task_times.len() as f64;
    let threshold = mean_ns * slowdown;
    let mut best: Option<(TaskId, u64)> = None;
    for i in 0..view.tasks.len() {
        let ts = view.tasks.get(i);
        if ts.completed || ts.running.len() != 1 {
            continue;
        }
        let (_, run_node, started) = ts.running[0];
        if run_node == node {
            continue; // don't duplicate onto the same machine
        }
        let elapsed = now.since(started).as_nanos();
        if (elapsed as f64) > threshold && best.map(|(_, e)| elapsed > e).unwrap_or(true) {
            best = Some((TaskId(i as u32), elapsed));
        }
    }
    best.map(|(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_split_matches_historical_arithmetic() {
        // 10 items over 4 tasks: base 2, extra 2 → [3, 3, 2, 2].
        assert_eq!(SplitPlan::Uniform { tasks: 4 }.split(10), vec![3, 3, 2, 2]);
        // Fewer items than tasks: leading tasks get one each.
        assert_eq!(
            SplitPlan::Uniform { tasks: 5 }.split(2),
            vec![1, 1, 0, 0, 0]
        );
        assert_eq!(SplitPlan::Uniform { tasks: 1 }.split(7), vec![7]);
    }

    #[test]
    fn weighted_split_apportions_exactly() {
        let plan = SplitPlan::Weighted {
            weights: vec![3.0, 1.0],
        };
        assert_eq!(plan.split(100), vec![75, 25]);
        // Totals always preserved, even with awkward weights.
        let plan = SplitPlan::Weighted {
            weights: vec![1.0, 1.0, 1.0],
        };
        let counts = plan.split(10);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    fn task_sizes_by_work_kind() {
        assert_eq!(
            task_work_size(&TaskWork::MapUnits {
                units: 42,
                index: 0
            }),
            42
        );
        assert_eq!(
            task_work_size(&TaskWork::Reduce {
                fetches: vec![(NodeId(1), 10), (NodeId(2), 5)],
                pairs: 0,
                write_output: false,
                output_path: String::new(),
            }),
            15
        );
    }
}
