//! Deadline-aware job-level scheduling (earliest slack first).
//!
//! [`DeadlineSlack`] orders deadline-carrying jobs by *slack*: the time
//! left until the deadline minus an estimate of the time still needed to
//! finish. The estimate comes from the observation feed the scheduler
//! already receives — the running mean of completed map-attempt durations
//! per kernel family — multiplied by the number of dispatch waves the
//! remaining tasks represent (`ceil(remaining / cluster slots)`). Before
//! anything is learned the estimate is zero and the order degrades to
//! plain EDF (earliest deadline first), which is the right cold-start
//! behavior: with no duration model, deadline order is the best available
//! urgency signal.
//!
//! Deadline-less jobs never block a deadline job: whenever any eligible
//! job carries a deadline it wins the slot; deadline-less jobs share the
//! remaining slots through the weighted fair-share pick
//! ([`FairShare`](super::FairShare)'s rule). A saturated stream of
//! deadline jobs can therefore hold deadline-less work off the cluster —
//! the non-preemptive trade-off; see the ROADMAP's preemption follow-on.

use accelmr_des::{FxHashMap, SimTime};
use accelmr_net::NodeId;

use crate::config::{JobId, MrConfig, TaskId};

use super::fair::fair_share_pick;
use super::{default_straggler, locality_pick, SchedView, Scheduler};

/// Mean completed-attempt duration for one kernel family, folded online.
#[derive(Clone, Copy, Debug, Default)]
struct DurStat {
    sum_secs: f64,
    samples: u64,
}

/// Earliest-slack-first dispatch for deadline jobs, fair-share for the
/// rest. Construct via
/// [`SchedulerPolicy::DeadlineSlack`](crate::SchedulerPolicy::DeadlineSlack).
#[derive(Debug)]
pub struct DeadlineSlack {
    slowdown: f64,
    /// The latest instant observed from the heartbeat feed — `pick_job`
    /// has no clock parameter, so slack is computed against the last
    /// heartbeat (dispatch only ever happens on heartbeats, so this is the
    /// current instant whenever the decision runs).
    now: SimTime,
    /// kernel family → mean completed map-attempt duration.
    durs: FxHashMap<String, DurStat>,
}

impl DeadlineSlack {
    /// Builds the policy from the runtime config (straggler threshold).
    pub fn new(cfg: &MrConfig) -> Self {
        DeadlineSlack {
            slowdown: cfg.speculative_slowdown,
            now: SimTime::ZERO,
            durs: FxHashMap::default(),
        }
    }

    /// Learned mean task duration for `kernel`, seconds; 0 when unlearned
    /// (slack then reduces to time-to-deadline — plain EDF).
    fn mean_dur_secs(&self, kernel: &str) -> f64 {
        self.durs
            .get(kernel)
            .filter(|s| s.samples > 0)
            .map(|s| s.sum_secs / s.samples as f64)
            .unwrap_or(0.0)
    }

    /// Slack of a deadline-carrying job, in seconds (negative = projected
    /// late). Remaining work = pending tasks plus in-flight incomplete
    /// tasks, executed in waves of `cluster_slots`.
    fn slack_secs(&self, view: &SchedView<'_>) -> f64 {
        let deadline = view
            .deadline
            .expect("slack is only computed for deadline jobs");
        let remaining = view.pending.len() + view.running_incomplete();
        let waves = remaining.div_ceil(view.cluster_slots.max(1));
        let left = deadline.as_secs_f64() - self.now.as_secs_f64();
        left - waves as f64 * self.mean_dur_secs(view.kernel)
    }
}

impl Scheduler for DeadlineSlack {
    fn name(&self) -> &'static str {
        "deadline-slack"
    }

    fn pick_job(&mut self, views: &[SchedView<'_>], _node: NodeId) -> Option<JobId> {
        let mut best: Option<(f64, JobId)> = None;
        for v in views {
            if !v.eligible || v.deadline.is_none() {
                continue;
            }
            let s = self.slack_secs(v);
            let better = match best {
                None => true,
                Some((bs, bj)) => s < bs || (s == bs && v.job < bj),
            };
            if better {
                best = Some((s, v.job));
            }
        }
        match best {
            Some((_, job)) => Some(job),
            // No deadline job runnable: the rest share fair.
            None => fair_share_pick(views),
        }
    }

    fn pick_task(&mut self, view: &SchedView<'_>, node: NodeId) -> Option<usize> {
        locality_pick(view, node)
    }

    fn pick_straggler(
        &mut self,
        view: &SchedView<'_>,
        node: NodeId,
        now: SimTime,
    ) -> Option<TaskId> {
        default_straggler(view, node, now, self.slowdown)
    }

    fn on_heartbeat(&mut self, _node: NodeId, _free_slots: usize, now: SimTime) {
        self.now = now;
    }

    fn on_task_completed(&mut self, completion: &super::TaskCompletion<'_>) {
        // Reduce attempts are fetch-bound and sized differently; the map
        // duration model stays map-only, like adaptive throughput learning.
        if completion.is_reduce {
            return;
        }
        let stat = self.durs.entry(completion.kernel.to_string()).or_default();
        stat.sum_secs += completion.elapsed.as_secs_f64();
        stat.samples += 1;
    }
}
