//! Deadline-aware job-level scheduling (earliest slack first).
//!
//! [`DeadlineSlack`] orders deadline-carrying jobs by *slack*: the time
//! left until the deadline minus an estimate of the time still needed to
//! finish. The estimate comes from the observation feed the scheduler
//! already receives — the running mean of completed map-attempt durations
//! per kernel family — multiplied by the number of dispatch waves the
//! remaining tasks represent (`ceil(remaining / cluster slots)`). Before
//! anything is learned the estimate is zero and the order degrades to
//! plain EDF (earliest deadline first), which is the right cold-start
//! behavior: with no duration model, deadline order is the best available
//! urgency signal.
//!
//! Deadline-less jobs never block a deadline job: whenever any eligible
//! job carries a deadline it wins the slot; deadline-less jobs share the
//! remaining slots through the weighted fair-share pick
//! ([`FairShare`](super::FairShare)'s rule).
//!
//! Dispatch alone cannot help a deadline job that arrives while running
//! attempts hold every slot — it waits a full task length for the first
//! natural completion. With preemption enabled
//! ([`PreemptionTuning`](crate::PreemptionTuning)), the
//! [`reclaim`](Scheduler::reclaim) hook closes that gap: once the most
//! urgent job's slack falls under the configured margin, the youngest
//! attempts of non-urgent jobs are killed and requeued so the slot frees
//! within one heartbeat instead.

use accelmr_des::{FxHashMap, SimTime};
use accelmr_net::NodeId;

use crate::config::{JobId, MrConfig, TaskId};

use super::fair::fair_share_pick;
use super::{
    default_straggler, locality_pick, reclaim_candidates, PreemptionBudget, ReclaimVictim,
    SchedView, Scheduler,
};

/// Mean completed-attempt duration for one kernel family, folded online.
#[derive(Clone, Copy, Debug, Default)]
struct DurStat {
    sum_secs: f64,
    samples: u64,
}

/// Earliest-slack-first dispatch for deadline jobs, fair-share for the
/// rest. Construct via
/// [`SchedulerPolicy::DeadlineSlack`](crate::SchedulerPolicy::DeadlineSlack).
#[derive(Debug)]
pub struct DeadlineSlack {
    slowdown: f64,
    /// The latest instant observed from the heartbeat feed — `pick_job`
    /// has no clock parameter, so slack is computed against the last
    /// heartbeat (dispatch only ever happens on heartbeats, so this is the
    /// current instant whenever the decision runs).
    now: SimTime,
    /// kernel family → mean completed map-attempt duration.
    durs: FxHashMap<String, DurStat>,
    /// Wasted-work budget for [`reclaim`](Scheduler::reclaim). Disabled by
    /// default config, making the hook a no-op.
    budget: PreemptionBudget,
}

impl DeadlineSlack {
    /// Builds the policy from the runtime config (straggler threshold,
    /// preemption budget).
    pub fn new(cfg: &MrConfig) -> Self {
        DeadlineSlack {
            slowdown: cfg.speculative_slowdown,
            now: SimTime::ZERO,
            durs: FxHashMap::default(),
            budget: PreemptionBudget::new(cfg.preemption),
        }
    }

    /// Learned mean task duration for `kernel`, seconds; 0 when unlearned
    /// (slack then reduces to time-to-deadline — plain EDF).
    fn mean_dur_secs(&self, kernel: &str) -> f64 {
        self.durs
            .get(kernel)
            .filter(|s| s.samples > 0)
            .map(|s| s.sum_secs / s.samples as f64)
            .unwrap_or(0.0)
    }

    /// Slack of a deadline-carrying job, in seconds (negative = projected
    /// late). Remaining work = pending tasks plus in-flight incomplete
    /// tasks, executed in waves of `cluster_slots`.
    fn slack_secs(&self, view: &SchedView<'_>) -> f64 {
        self.slack_secs_at(view, self.now)
    }

    /// [`slack_secs`](Self::slack_secs) against an explicit instant —
    /// [`reclaim`](Scheduler::reclaim) carries its own clock.
    fn slack_secs_at(&self, view: &SchedView<'_>, now: SimTime) -> f64 {
        let deadline = view
            .deadline
            .expect("slack is only computed for deadline jobs");
        let remaining = view.pending.len() + view.running_incomplete;
        let waves = remaining.div_ceil(view.cluster_slots.max(1));
        let left = deadline.as_secs_f64() - now.as_secs_f64();
        left - waves as f64 * self.mean_dur_secs(view.kernel)
    }
}

impl Scheduler for DeadlineSlack {
    fn name(&self) -> &'static str {
        "deadline-slack"
    }

    fn pick_job(&mut self, views: &[SchedView<'_>], _node: NodeId) -> Option<JobId> {
        let mut best: Option<(f64, JobId)> = None;
        for v in views {
            if !v.eligible || v.deadline.is_none() {
                continue;
            }
            let s = self.slack_secs(v);
            let better = match best {
                None => true,
                Some((bs, bj)) => s < bs || (s == bs && v.job < bj),
            };
            if better {
                best = Some((s, v.job));
            }
        }
        match best {
            Some((_, job)) => Some(job),
            // No deadline job runnable: the rest share fair.
            None => fair_share_pick(views),
        }
    }

    fn pick_task(&mut self, view: &SchedView<'_>, node: NodeId) -> Option<usize> {
        locality_pick(view, node)
    }

    fn pick_straggler(
        &mut self,
        view: &SchedView<'_>,
        node: NodeId,
        now: SimTime,
    ) -> Option<TaskId> {
        default_straggler(view, node, now, self.slowdown)
    }

    /// Reclaims slots for the most urgent deadline job once its slack
    /// falls under [`slack_margin`](crate::PreemptionTuning::slack_margin)
    /// (a kill only frees the slot at the victim node's *next* heartbeat,
    /// so waiting for slack zero reclaims too late). Victims come from
    /// deadline-less jobs or deadline jobs with at least twice the margin
    /// of slack to spare — never from a job that is itself urgent —
    /// youngest attempt first, under the [`PreemptionTuning`](crate::PreemptionTuning) budget, at most one
    /// kill per ask (one per node per heartbeat): natural completions
    /// usually serve the rest of the pending queue, so reclaim paces
    /// itself instead of pre-purchasing every slot with discarded runtime.
    fn reclaim(
        &mut self,
        views: &[SchedView<'_>],
        node: NodeId,
        now: SimTime,
    ) -> Vec<ReclaimVictim> {
        if !self.budget.tuning.enabled() {
            return Vec::new();
        }
        let margin = self.budget.tuning.slack_margin.as_secs_f64();
        // Beneficiary: the minimum-slack eligible deadline job with
        // pending work that is projected to run out of margin.
        let mut best: Option<(f64, JobId, &SchedView<'_>)> = None;
        for v in views {
            if !v.eligible || v.deadline.is_none() || v.pending.is_empty() {
                continue;
            }
            let s = self.slack_secs_at(v, now);
            if s >= margin {
                continue;
            }
            let better = match best {
                None => true,
                Some((bs, bj, _)) => s < bs || (s == bs && v.job < bj),
            };
            if better {
                best = Some((s, v.job, v));
            }
        }
        let Some((_, beneficiary, bview)) = best else {
            return Vec::new();
        };
        let need = bview.pending.len().min(1);
        let raidable: Vec<JobId> = views
            .iter()
            .filter(|v| {
                v.job != beneficiary
                    && match v.deadline {
                        // Deadline-less jobs have no urgency to protect.
                        None => true,
                        // A deadline job may be raided only with slack to
                        // spare.
                        Some(_) => self.slack_secs_at(v, now) >= 2.0 * margin,
                    }
            })
            .map(|v| v.job)
            .collect();
        let mut victims = Vec::new();
        for (elapsed, mut cand) in
            reclaim_candidates(views, node, now, self.budget.tuning.min_attempt_age)
        {
            if victims.len() >= need {
                break;
            }
            if !raidable.contains(&cand.job) || !self.budget.allows(cand.job, cand.task, now) {
                continue;
            }
            // An attempt that has already run the learned mean duration for
            // its kernel is expected to finish imminently — it frees the
            // slot naturally about as fast as a kill-and-requeue round trip
            // would, while carrying the maximum discarded runtime. Skip it
            // and let the deadline job take the natural completion instead
            // (only once a mean is learned; before that every victim is
            // fair game, matching the cold-start EDF posture above).
            if let Some(vview) = views.iter().find(|v| v.job == cand.job) {
                let mean = self.mean_dur_secs(vview.kernel);
                if mean > 0.0 && elapsed.as_secs_f64() >= mean {
                    continue;
                }
            }
            self.budget.note_kill(cand.job, cand.task, now);
            cand.beneficiary = beneficiary;
            victims.push(cand);
        }
        victims
    }

    fn on_heartbeat(&mut self, _node: NodeId, _free_slots: usize, now: SimTime) {
        self.now = now;
    }

    fn on_task_completed(&mut self, completion: &super::TaskCompletion<'_>) {
        // Reduce attempts are fetch-bound and sized differently; the map
        // duration model stays map-only, like adaptive throughput learning.
        if completion.is_reduce {
            return;
        }
        let stat = self.durs.entry(completion.kernel.to_string()).or_default();
        stat.sum_secs += completion.elapsed.as_secs_f64();
        stat.samples += 1;
    }
}
