//! Locality-preferring dispatch (Hadoop's default, as the paper ran it).

use accelmr_des::SimTime;
use accelmr_net::NodeId;

use crate::config::{MrConfig, TaskId};

use super::{default_straggler, locality_pick, SchedView, Scheduler};

/// Prefers the oldest pending task with an input replica on the
/// requesting node ("it tries to minimize the number of remote blocks
/// accesses"); falls back to the queue front when nothing is local.
#[derive(Debug)]
pub struct LocalityFirst {
    slowdown: f64,
}

impl LocalityFirst {
    /// Builds the policy from the runtime config (straggler threshold).
    pub fn new(cfg: &MrConfig) -> Self {
        LocalityFirst {
            slowdown: cfg.speculative_slowdown,
        }
    }
}

impl Scheduler for LocalityFirst {
    fn name(&self) -> &'static str {
        "locality-first"
    }

    fn pick_task(&mut self, view: &SchedView<'_>, node: NodeId) -> Option<usize> {
        locality_pick(view, node)
    }

    fn pick_straggler(
        &mut self,
        view: &SchedView<'_>,
        node: NodeId,
        now: SimTime,
    ) -> Option<TaskId> {
        default_straggler(view, node, now, self.slowdown)
    }
}
