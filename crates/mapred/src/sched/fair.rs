//! Multi-tenant weighted fair-share job-level scheduling.
//!
//! Hadoop FIFO drains concurrent jobs in job-id order, so one tenant's
//! early heavy job head-of-line-blocks everyone else's slots for its whole
//! map phase. [`FairShare`] fixes this at the *job* level: every free slot
//! goes to the tenant with the smallest *weighted running-slot share*
//! (weighted max-min over the slots each tenant currently occupies), FIFO
//! within a tenant, locality-preferring within a job.
//!
//! Starvation-freedom is by construction: a tenant with runnable work and
//! zero running slots has the minimum possible share (0), so it wins the
//! next slot against any tenant that is already running — no history,
//! priorities, or aging involved. Weighted shares converge because every
//! dispatch raises exactly the winning tenant's share: tenants' occupied
//! slots approach the weight proportions whenever all of them stay busy
//! (pinned by the convergence property tests).

use accelmr_des::SimTime;
use accelmr_net::NodeId;

use crate::config::{JobId, MrConfig, TaskId};

use super::{
    default_straggler, locality_pick, reclaim_candidates, PreemptionBudget, ReclaimVictim,
    SchedView, Scheduler,
};

/// Weighted max-min fair sharing across tenants (job-level), locality
/// within jobs. Construct via
/// [`SchedulerPolicy::FairShare`](crate::SchedulerPolicy::FairShare).
#[derive(Debug)]
pub struct FairShare {
    slowdown: f64,
    /// Tenants at the minimum weighted share, snapshotted by the latest
    /// [`pick_job`](Scheduler::pick_job) call (which the dispatch loop
    /// always makes before any straggler offer on the same slot). Gates
    /// speculation: duplicates occupy real slots and are billed to their
    /// tenant's share like any attempt, so only the poorest tenant(s) may
    /// launch them — an over-share tenant cannot grab extra capacity
    /// through speculative copies that regular dispatch would deny it.
    min_share_tenants: Vec<String>,
    /// Wasted-work budget for [`reclaim`](Scheduler::reclaim). Disabled by
    /// default config, making the hook a no-op.
    budget: PreemptionBudget,
}

impl FairShare {
    /// Builds the policy from the runtime config (straggler threshold,
    /// preemption budget).
    pub fn new(cfg: &MrConfig) -> Self {
        FairShare {
            slowdown: cfg.speculative_slowdown,
            min_share_tenants: Vec::new(),
            budget: PreemptionBudget::new(cfg.preemption),
        }
    }
}

/// Tenant accounting over a `pick_job` view slice: `(tenant, usage,
/// weight)` with usage summing running slots over *all* views (speculative
/// attempts included — they occupy slots like any other) and weight the
/// maximum among the tenant's jobs. A linear scan keyed by name: tenant
/// counts per decision are small, and determinism matters more than big-O.
fn tenant_usage<'a>(views: &[SchedView<'a>]) -> Vec<(&'a str, f64, f64)> {
    let mut tenants: Vec<(&str, f64, f64)> = Vec::new();
    for v in views {
        let slots = v.running_slots as f64;
        match tenants.iter_mut().find(|(t, _, _)| *t == v.tenant) {
            Some((_, usage, weight)) => {
                *usage += slots;
                *weight = weight.max(v.weight);
            }
            None => tenants.push((v.tenant, slots, v.weight)),
        }
    }
    tenants
}

/// The tenants whose weighted share is minimal across `views` — the ones
/// entitled to the next slot (and therefore the only ones allowed to spend
/// it on a speculative duplicate).
fn min_share_tenants(views: &[SchedView<'_>]) -> Vec<String> {
    let tenants = tenant_usage(views);
    let share = |usage: f64, weight: f64| usage / weight.max(f64::MIN_POSITIVE);
    let Some(min) = tenants
        .iter()
        .map(|&(_, u, w)| share(u, w))
        .min_by(|a, b| a.partial_cmp(b).expect("shares are finite"))
    else {
        return Vec::new();
    };
    tenants
        .iter()
        .filter(|&&(_, u, w)| share(u, w) == min)
        .map(|&(t, _, _)| t.to_owned())
        .collect()
}

/// The weighted max-min pick over `views`, shared by [`FairShare`] and
/// [`DeadlineSlack`](super::DeadlineSlack)'s deadline-less fallback.
///
/// Tenant usage sums running slots over *all* views (ineligible jobs still
/// occupy slots that count against their tenant); the tenant weight is the
/// maximum weight among its jobs (tenants normally share one weight — the
/// max makes a mixed-weight tenant err toward the larger entitlement
/// rather than silently splitting into two accounting buckets). Among
/// eligible jobs, the smallest `usage / weight` tenant wins; ties break to
/// the lowest job id, so equal-share tenants degrade to plain FIFO.
pub(crate) fn fair_share_pick(views: &[SchedView<'_>]) -> Option<JobId> {
    let tenants = tenant_usage(views);
    let share = |tenant: &str| -> f64 {
        tenants
            .iter()
            .find(|(t, _, _)| *t == tenant)
            .map(|&(_, usage, weight)| usage / weight.max(f64::MIN_POSITIVE))
            .unwrap_or(0.0)
    };
    let mut best: Option<(f64, JobId)> = None;
    for v in views {
        if !v.eligible {
            continue;
        }
        let s = share(v.tenant);
        let better = match best {
            None => true,
            Some((bs, bj)) => s < bs || (s == bs && v.job < bj),
        };
        if better {
            best = Some((s, v.job));
        }
    }
    best.map(|(_, job)| job)
}

impl Scheduler for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn pick_job(&mut self, views: &[SchedView<'_>], _node: NodeId) -> Option<JobId> {
        self.min_share_tenants = min_share_tenants(views);
        fair_share_pick(views)
    }

    fn pick_task(&mut self, view: &SchedView<'_>, node: NodeId) -> Option<usize> {
        locality_pick(view, node)
    }

    fn pick_straggler(
        &mut self,
        view: &SchedView<'_>,
        node: NodeId,
        now: SimTime,
    ) -> Option<TaskId> {
        // Speculative duplicates are billed to the tenant's running-slot
        // share like any attempt, so only a minimum-share tenant may spend
        // a slot on one. An empty snapshot (no `pick_job` yet — e.g. this
        // policy serving as a per-job override) keeps the default open.
        if !self.min_share_tenants.is_empty()
            && !self.min_share_tenants.iter().any(|t| t == view.tenant)
        {
            return None;
        }
        default_straggler(view, node, now, self.slowdown)
    }

    /// Reclaims slots for a tenant running at least one full slot below
    /// its weighted entitlement (`weight / Σweights × cluster_slots`),
    /// killing the youngest attempts of tenants holding at least one slot
    /// *above* theirs. Whole-slot deficits/surpluses keep the policy from
    /// thrashing around fractional entitlements; the
    /// [`PreemptionTuning`](crate::PreemptionTuning) budget bounds total
    /// kills and re-kill cadence; and at
    /// most **one** kill is granted per ask (one per node per heartbeat) —
    /// natural completions usually cover the rest of the deficit, so
    /// reclaim paces itself instead of pre-purchasing every missing slot
    /// with discarded runtime.
    fn reclaim(
        &mut self,
        views: &[SchedView<'_>],
        node: NodeId,
        now: SimTime,
    ) -> Vec<ReclaimVictim> {
        if !self.budget.tuning.enabled() {
            return Vec::new();
        }
        let tenants = tenant_usage(views);
        let total_weight: f64 = tenants.iter().map(|&(_, _, w)| w).sum();
        let cluster = views.first().map(|v| v.cluster_slots).unwrap_or(0);
        if total_weight <= 0.0 || cluster == 0 {
            return Vec::new();
        }
        let entitled = |weight: f64| -> f64 { weight / total_weight * cluster as f64 };
        // Balance per tenant: usage − entitlement, in slots. EPS absorbs
        // float noise so an exactly-one-slot imbalance still counts.
        const EPS: f64 = 1e-9;
        let mut balance: Vec<(&str, f64)> = tenants
            .iter()
            .map(|&(t, usage, weight)| (t, usage - entitled(weight)))
            .collect();
        let deficit = |balance: &[(&str, f64)], tenant: &str| -> f64 {
            balance
                .iter()
                .find(|(t, _)| *t == tenant)
                .map(|&(_, b)| -b)
                .unwrap_or(0.0)
        };
        // Beneficiary: the minimum-share eligible job with pending work
        // whose tenant is at least one whole slot short — the same
        // ordering regular dispatch uses, restricted to deficient tenants.
        let share = |tenant: &str| -> f64 {
            tenants
                .iter()
                .find(|(t, _, _)| *t == tenant)
                .map(|&(_, u, w)| u / w.max(f64::MIN_POSITIVE))
                .unwrap_or(0.0)
        };
        let mut best: Option<(f64, JobId, &SchedView<'_>)> = None;
        for v in views {
            if !v.eligible || v.pending.is_empty() || deficit(&balance, v.tenant) < 1.0 - EPS {
                continue;
            }
            let s = share(v.tenant);
            let better = match best {
                None => true,
                Some((bs, bj, _)) => s < bs || (s == bs && v.job < bj),
            };
            if better {
                best = Some((s, v.job, v));
            }
        }
        let Some((_, beneficiary, bview)) = best else {
            return Vec::new();
        };
        let need = (deficit(&balance, bview.tenant) + EPS)
            .floor()
            .min(bview.pending.len() as f64)
            .min(1.0) as usize;
        let mut victims = Vec::new();
        for (_elapsed, mut cand) in
            reclaim_candidates(views, node, now, self.budget.tuning.min_attempt_age)
        {
            if victims.len() >= need {
                break;
            }
            let Some(vt) = views.iter().find(|v| v.job == cand.job).map(|v| v.tenant) else {
                continue;
            };
            if vt == bview.tenant {
                continue;
            }
            let Some(entry) = balance.iter_mut().find(|(t, _)| *t == vt) else {
                continue;
            };
            if entry.1 < 1.0 - EPS || !self.budget.allows(cand.job, cand.task, now) {
                continue;
            }
            entry.1 -= 1.0;
            self.budget.note_kill(cand.job, cand.task, now);
            cand.beneficiary = beneficiary;
            victims.push(cand);
        }
        victims
    }
}
