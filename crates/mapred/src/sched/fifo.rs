//! Plain FIFO dispatch (the ablation baseline).

use accelmr_des::SimTime;
use accelmr_net::NodeId;

use crate::config::{MrConfig, TaskId};

use super::{default_straggler, SchedView, Scheduler};

/// Dispatches strictly in queue order, ignoring placement.
///
/// `pick_task` always returns index `0` — the *front* of the pending
/// queue, not an arbitrary element. This is correct because the runtime's
/// pending queue is order-stable: tasks enter in submission order
/// (`TaskId` ascending), the runtime only ever pops the index this
/// scheduler picks and *appends* re-queued work (failed attempts,
/// speculative re-queues, tasks orphaned by node death) at the back.
/// Dispatch order therefore equals submission order, with re-executed
/// tasks re-dispatched after everything that was already waiting — the
/// invariant `fifo_dispatch_order_is_submission_order_across_requeue`
/// pins down.
#[derive(Debug)]
pub struct Fifo {
    slowdown: f64,
}

impl Fifo {
    /// Builds the policy from the runtime config (straggler threshold).
    pub fn new(cfg: &MrConfig) -> Self {
        Fifo {
            slowdown: cfg.speculative_slowdown,
        }
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick_task(&mut self, view: &SchedView<'_>, _node: NodeId) -> Option<usize> {
        if view.pending.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn pick_straggler(
        &mut self,
        view: &SchedView<'_>,
        node: NodeId,
        now: SimTime,
    ) -> Option<TaskId> {
        default_straggler(view, node, now, self.slowdown)
    }
}
