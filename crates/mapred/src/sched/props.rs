//! Job-level scheduling properties, driven by the workspace's own
//! deterministic RNG (no external property-testing dependency): every run
//! explores the same fixed set of random cases, so failures reproduce
//! exactly.
//!
//! A miniature slot simulator stands in for the JobTracker's heartbeat
//! loop: jobs hold tasks that are pending, running, or completed; each
//! step either offers a free slot to `pick_job` (dispatch) or completes a
//! pseudo-random running attempt (the completion order the policies must
//! not rely on). Views follow `pick_job_for`'s shape with speculation
//! *disabled* — one per active job, `eligible` ⇔ pending non-empty — so
//! "runnable" here means a job with pending tasks. (With speculation on,
//! the runtime also marks jobs eligible that only have running incomplete
//! tasks; that regular-dispatch-free path is exercised by the golden
//! multi-job traces, not this harness.)

use accelmr_des::{SimTime, Xoshiro256};
use accelmr_net::NodeId;

use crate::config::{JobId, MrConfig, SchedulerPolicy, TaskId};

use super::{build_scheduler, SchedView, Scheduler, TaskView};

struct MiniTask {
    completed: bool,
    is_reduce: bool,
    running: Vec<(u32, NodeId, SimTime)>,
}

impl MiniTask {
    fn fresh() -> Self {
        MiniTask {
            completed: false,
            is_reduce: false,
            running: Vec::new(),
        }
    }
}

struct MiniJob {
    id: u32,
    tenant: usize,
    weight: f64,
    deadline: Option<SimTime>,
}

struct MiniCluster {
    jobs: Vec<MiniJob>,
    /// Tasks per job, indexed like `jobs`.
    tasks: Vec<Vec<MiniTask>>,
    tenant_names: Vec<String>,
}

impl MiniCluster {
    fn pending(&self, j: usize) -> Vec<TaskId> {
        self.tasks[j]
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.completed && t.running.is_empty())
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }

    fn running_slots(&self) -> usize {
        self.tasks.iter().flatten().map(|t| t.running.len()).sum()
    }

    /// One `pick_job` decision, views built the way the JobTracker builds
    /// them. Returns the picked job index after asserting the core
    /// property: the pick is always an eligible view with runnable tasks.
    fn pick(&self, sched: &mut dyn Scheduler, node: NodeId) -> Option<usize> {
        let pendings: Vec<Vec<TaskId>> = (0..self.jobs.len()).map(|j| self.pending(j)).collect();
        let task_views: Vec<Vec<TaskView<'_>>> = self
            .tasks
            .iter()
            .map(|tasks| {
                tasks
                    .iter()
                    .map(|t| TaskView {
                        hints: &[],
                        is_reduce: t.is_reduce,
                        completed: t.completed,
                        running: &t.running,
                        size: 1,
                    })
                    .collect()
            })
            .collect();
        let views: Vec<SchedView<'_>> = self
            .jobs
            .iter()
            .zip(&task_views)
            .zip(&pendings)
            .map(|((job, tasks), pending)| {
                let (running_slots, running_incomplete) = super::view_counts(tasks);
                SchedView {
                    job: JobId(job.id),
                    kernel: "k",
                    tenant: &self.tenant_names[job.tenant],
                    weight: job.weight,
                    deadline: job.deadline,
                    submitted: SimTime::ZERO,
                    eligible: !pending.is_empty(),
                    cluster_slots: 8,
                    pending,
                    tasks,
                    running_slots,
                    running_incomplete,
                    completed_task_times: &[],
                    slots_per_node: 2,
                }
            })
            .collect();
        let pick = sched.pick_job(&views, node);
        let any_eligible = views.iter().any(|v| v.eligible);
        match pick {
            None => {
                // Policies may decline, but with eligible work the shipped
                // ones never do.
                assert!(
                    !any_eligible,
                    "{} left eligible work unpicked",
                    sched.name()
                );
                None
            }
            Some(job) => {
                let v = views
                    .iter()
                    .find(|v| v.job == job)
                    .unwrap_or_else(|| panic!("{} picked unknown {job}", sched.name()));
                assert!(v.eligible, "{} picked ineligible {job}", sched.name());
                assert!(
                    !v.pending.is_empty(),
                    "{} picked {job} with no runnable tasks",
                    sched.name()
                );
                Some(self.jobs.iter().position(|j| j.id == job.0).expect("known"))
            }
        }
    }

    /// One [`Scheduler::reclaim`] ask, views built exactly like
    /// [`pick`](MiniCluster::pick)'s (eligible ⇔ pending non-empty).
    fn reclaim(
        &self,
        sched: &mut dyn Scheduler,
        node: NodeId,
        now: SimTime,
    ) -> Vec<super::ReclaimVictim> {
        let pendings: Vec<Vec<TaskId>> = (0..self.jobs.len()).map(|j| self.pending(j)).collect();
        let task_views: Vec<Vec<TaskView<'_>>> = self
            .tasks
            .iter()
            .map(|tasks| {
                tasks
                    .iter()
                    .map(|t| TaskView {
                        hints: &[],
                        is_reduce: t.is_reduce,
                        completed: t.completed,
                        running: &t.running,
                        size: 1,
                    })
                    .collect()
            })
            .collect();
        let views: Vec<SchedView<'_>> = self
            .jobs
            .iter()
            .zip(&task_views)
            .zip(&pendings)
            .map(|((job, tasks), pending)| {
                let (running_slots, running_incomplete) = super::view_counts(tasks);
                SchedView {
                    job: JobId(job.id),
                    kernel: "k",
                    tenant: &self.tenant_names[job.tenant],
                    weight: job.weight,
                    deadline: job.deadline,
                    submitted: SimTime::ZERO,
                    eligible: !pending.is_empty(),
                    cluster_slots: 8,
                    pending,
                    tasks,
                    running_slots,
                    running_incomplete,
                    completed_task_times: &[],
                    slots_per_node: 2,
                }
            })
            .collect();
        sched.reclaim(&views, node, now)
    }

    fn dispatch(&mut self, j: usize) {
        let t = self.pending(j)[0].0 as usize;
        self.tasks[j][t].running.push((1, NodeId(1), SimTime::ZERO));
    }

    /// Completes the `k`-th running attempt (in job/task order).
    fn complete_nth(&mut self, k: usize) {
        let mut left = k;
        for tasks in &mut self.tasks {
            for t in tasks.iter_mut() {
                if !t.running.is_empty() {
                    if left == 0 {
                        t.running.clear();
                        t.completed = true;
                        return;
                    }
                    left -= 1;
                }
            }
        }
        panic!("no {k}-th running attempt");
    }

    fn all_done(&self) -> bool {
        self.tasks.iter().flatten().all(|t| t.completed)
    }
}

fn random_cluster(
    rng: &mut Xoshiro256,
    tasks_per_job: std::ops::RangeInclusive<u64>,
) -> MiniCluster {
    let n_tenants = rng.range_inclusive(2, 4) as usize;
    let tenant_names: Vec<String> = (0..n_tenants).map(|t| format!("tenant-{t}")).collect();
    let mut jobs = Vec::new();
    let mut tasks = Vec::new();
    let mut id = 0;
    for tenant in 0..n_tenants {
        let weight = rng.range_inclusive(1, 8) as f64;
        for _ in 0..rng.range_inclusive(1, 2) {
            jobs.push(MiniJob {
                id,
                tenant,
                weight,
                deadline: None,
            });
            id += 1;
            let n = rng.range_inclusive(*tasks_per_job.start(), *tasks_per_job.end()) as usize;
            tasks.push((0..n).map(|_| MiniTask::fresh()).collect());
        }
    }
    MiniCluster {
        jobs,
        tasks,
        tenant_names,
    }
}

fn all_policies() -> Vec<Box<dyn Scheduler>> {
    let cfg = MrConfig::default();
    [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::LocalityFirst,
        SchedulerPolicy::adaptive(),
        SchedulerPolicy::FairShare,
        SchedulerPolicy::DeadlineSlack,
    ]
    .into_iter()
    .map(|p| build_scheduler(p, &cfg))
    .collect()
}

/// Every shipped policy's `pick_job` — including the trait default the
/// task-level policies inherit — only ever returns eligible jobs with
/// runnable tasks, across random mixes of busy, drained, and completed
/// jobs (and declines only when nothing is eligible). Asserted inside
/// [`MiniCluster::pick`] on every decision.
#[test]
fn pick_job_never_returns_unrunnable_jobs() {
    let mut rng = Xoshiro256::seed_from_u64(0x71C);
    for _ in 0..64 {
        let mut c = random_cluster(&mut rng, 1..=6);
        // Randomly pre-drain some jobs: all tasks completed, or all
        // running (pending empty either way).
        for j in 0..c.jobs.len() {
            match rng.next_below(3) {
                0 => {
                    for t in c.tasks[j].iter_mut() {
                        t.completed = true;
                    }
                }
                1 => {
                    for t in c.tasks[j].iter_mut() {
                        t.running.push((1, NodeId(2), SimTime::ZERO));
                    }
                }
                _ => {}
            }
        }
        for sched in &mut all_policies() {
            // Drive a short random dispatch/complete sequence; `pick`
            // asserts the property at every step.
            for _ in 0..24 {
                let free = c.running_slots() < 8;
                if free {
                    if let Some(j) = c.pick(sched.as_mut(), NodeId(1)) {
                        c.dispatch(j);
                        continue;
                    }
                }
                let running = c.running_slots();
                if running == 0 {
                    break;
                }
                c.complete_nth(rng.next_below(running as u64) as usize);
            }
        }
    }
}

/// Weighted shares converge: on random tenant/weight mixes with deep
/// backlogs (every tenant stays busy throughout), the per-tenant integral
/// of occupied slots approaches the weight proportions.
#[test]
fn fair_share_weighted_shares_converge() {
    let mut rng = Xoshiro256::seed_from_u64(0xFA1);
    for case in 0..24 {
        let mut c = random_cluster(&mut rng, 2_000..=2_000);
        let mut sched = build_scheduler(SchedulerPolicy::FairShare, &MrConfig::default());
        let slots = 12;
        let n_tenants = c.tenant_names.len();
        let mut usage = vec![0u64; n_tenants]; // slot-steps per tenant
        let mut steps = 0u64;
        while steps < 3_000 {
            if c.running_slots() < slots {
                if let Some(j) = c.pick(sched.as_mut(), NodeId(1)) {
                    c.dispatch(j);
                }
            } else {
                let running = c.running_slots();
                c.complete_nth(rng.next_below(running as u64) as usize);
            }
            // Integrate occupied slots per tenant (unit time step).
            for (j, job) in c.jobs.iter().enumerate() {
                usage[job.tenant] +=
                    c.tasks[j].iter().map(|t| t.running.len()).sum::<usize>() as u64;
            }
            steps += 1;
        }
        // Backlogs must still be deep (the convergence claim only holds
        // while every tenant has work).
        for j in 0..c.jobs.len() {
            assert!(!c.pending(j).is_empty(), "case {case}: backlog drained");
        }
        let weight_of = |t: usize| c.jobs.iter().find(|j| j.tenant == t).unwrap().weight;
        let total_w: f64 = (0..n_tenants).map(weight_of).sum();
        let total_u: u64 = usage.iter().sum();
        for t in 0..n_tenants {
            let got = usage[t] as f64 / total_u as f64;
            let want = weight_of(t) / total_w;
            assert!(
                (got - want).abs() < 0.15,
                "case {case}: tenant {t} share {got:.3} vs weight share {want:.3} \
                 (weights: {:?}, usage: {usage:?})",
                (0..n_tenants).map(weight_of).collect::<Vec<_>>(),
            );
        }
    }
}

/// No tenant starves: across 1000 random dispatch sequences, every tenant
/// is first served within a handful of dispatches (a zero-share tenant
/// only ever loses ties against other zero-share tenants), every
/// backlogged tenant's inter-dispatch gap stays bounded, and every job
/// eventually completes.
#[test]
fn fair_share_never_starves_a_tenant() {
    let mut rng = Xoshiro256::seed_from_u64(0x57A);
    for case in 0..1000 {
        let mut c = random_cluster(&mut rng, 2..=10);
        let mut sched = build_scheduler(SchedulerPolicy::FairShare, &MrConfig::default());
        let slots = rng.range_inclusive(2, 6) as usize;
        let n_tenants = c.tenant_names.len();
        let mut first: Vec<Option<u64>> = vec![None; n_tenants];
        let mut last: Vec<u64> = vec![0; n_tenants];
        let mut dispatches = 0u64;
        for _ in 0..4_000 {
            if c.all_done() {
                break;
            }
            let can_dispatch =
                c.running_slots() < slots && (0..c.jobs.len()).any(|j| !c.pending(j).is_empty());
            if can_dispatch {
                let j = c.pick(sched.as_mut(), NodeId(1)).expect("eligible work");
                let t = c.jobs[j].tenant;
                dispatches += 1;
                first[t].get_or_insert(dispatches);
                // Gap bound: a backlogged tenant is served at least once
                // every `slots × Σweights/min-weight` dispatches (weighted
                // round length), with slack for slot churn.
                let gap = dispatches - last[t];
                assert!(
                    gap <= 16 * slots as u64 * 8,
                    "case {case}: tenant {t} waited {gap} dispatches"
                );
                last[t] = dispatches;
                c.dispatch(j);
            } else {
                let running = c.running_slots();
                assert!(running > 0, "case {case}: deadlock");
                c.complete_nth(rng.next_below(running as u64) as usize);
            }
        }
        assert!(c.all_done(), "case {case}: jobs never finished");
        // Every tenant is served early: a zero-share tenant only loses
        // ties to other zero-share tenants (lower job id), so its first
        // dispatch lands within a few churn rounds of the opening.
        for (t, served) in first.iter().enumerate() {
            let f = served.expect("tenant dispatched");
            assert!(
                f <= 64,
                "case {case}: tenant {t} first served at dispatch {f}"
            );
        }
    }
}

/// DeadlineSlack: deadline jobs win over deadline-less ones, urgency
/// orders by slack (EDF when unlearned), and learned durations shift the
/// order when remaining work differs.
#[test]
fn deadline_slack_orders_by_urgency() {
    let cfg = MrConfig::default();
    let mut sched = build_scheduler(SchedulerPolicy::DeadlineSlack, &cfg);
    let mut c = MiniCluster {
        jobs: vec![
            MiniJob {
                id: 0,
                tenant: 0,
                weight: 1.0,
                deadline: None,
            },
            MiniJob {
                id: 1,
                tenant: 0,
                weight: 1.0,
                deadline: Some(SimTime::from_nanos(300_000_000_000)), // t=300s
            },
            MiniJob {
                id: 2,
                tenant: 0,
                weight: 1.0,
                deadline: Some(SimTime::from_nanos(100_000_000_000)), // t=100s
            },
        ],
        tasks: (0..3)
            .map(|_| (0..4).map(|_| MiniTask::fresh()).collect())
            .collect(),
        tenant_names: vec!["t".into()],
    };
    // Unlearned = plain EDF: the t=100s deadline wins over t=300s and over
    // the deadline-less job 0, despite job 0's lower id.
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(2));
    // Learned durations + unequal remaining work flip the order: give job
    // 1 a deep backlog so its projected finish overruns t=300s while job
    // 2 (4 tasks, 8 slots, one wave) keeps plenty of slack before t=100s.
    sched.on_heartbeat(NodeId(1), 2, SimTime::ZERO);
    sched.on_task_completed(&super::TaskCompletion {
        job: JobId(9),
        task: TaskId(0),
        node: NodeId(1),
        kernel: "k",
        is_reduce: false,
        elapsed: accelmr_des::SimDuration::from_secs(40),
        work: 1,
    });
    c.tasks[1] = (0..60).map(|_| MiniTask::fresh()).collect();
    // Job 1: 60 tasks / 8 slots = 8 waves × 40 s = 320 s > 300 s → slack
    // -20 s. Job 2: 1 wave × 40 s against 100 s → slack +60 s.
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(1));
    // With every deadline job drained, the rest are served fair-share.
    for j in [1, 2] {
        for t in c.tasks[j].iter_mut() {
            t.completed = true;
        }
    }
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(0));
}

/// FairShare unit behavior: zero-usage tenants win, weights scale usage,
/// ineligible jobs still bill their tenant, ties fall back to job order.
#[test]
fn fair_share_pick_accounting() {
    let cfg = MrConfig::default();
    let mut sched = build_scheduler(SchedulerPolicy::FairShare, &cfg);
    let mut c = MiniCluster {
        jobs: vec![
            MiniJob {
                id: 0,
                tenant: 0,
                weight: 1.0,
                deadline: None,
            },
            MiniJob {
                id: 1,
                tenant: 1,
                weight: 1.0,
                deadline: None,
            },
        ],
        tasks: (0..2)
            .map(|_| (0..6).map(|_| MiniTask::fresh()).collect())
            .collect(),
        tenant_names: vec!["a".into(), "b".into()],
    };
    // Tie at zero usage: lowest job id (FIFO degeneration).
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(0));
    c.dispatch(0);
    // Tenant a now runs 1 slot; zero-usage tenant b wins.
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(1));
    c.dispatch(1);
    // 1 vs 1: tie again → job 0.
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(0));
    // Double tenant b's weight: 1/1 vs 1/2 → b wins until 2/2.
    c.jobs[1].weight = 2.0;
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(1));
    c.dispatch(1);
    assert_eq!(c.pick(sched.as_mut(), NodeId(1)), Some(0));
}

/// The preemption battery's core safety property, across 1000 random
/// cluster states per policy (FairShare and DeadlineSlack, the two
/// reclaiming policies): `reclaim` never names a reduce attempt, a
/// completed task, an attempt younger than `min_attempt_age`, or an
/// attempt not running alone on the asked node; a victim job never
/// suffers more than `max_kills_per_job` kills over the scheduler's
/// lifetime; a task is never re-victimized within `cooldown`; every
/// victim names a beneficiary with pending work; and a zero-budget
/// scheduler facing the *same* views reclaims nothing, ever.
#[test]
fn reclaim_respects_budget_and_victim_rules() {
    use accelmr_des::{FxHashMap, SimDuration};

    use crate::config::PreemptionTuning;

    let tuning = PreemptionTuning {
        max_kills_per_job: 3,
        min_attempt_age: SimDuration::from_secs(5),
        cooldown: SimDuration::from_secs(10),
        slack_margin: SimDuration::from_secs(30),
    };
    let zero = PreemptionTuning {
        max_kills_per_job: 0,
        ..tuning
    };
    let mut rng = Xoshiro256::seed_from_u64(0xBEEF);
    let mut total_kills = 0u64;
    for case in 0..1000 {
        for policy in [SchedulerPolicy::FairShare, SchedulerPolicy::DeadlineSlack] {
            let cfg = MrConfig {
                scheduler: policy,
                preemption: tuning,
                ..MrConfig::default()
            };
            let mut sched = build_scheduler(policy, &cfg);
            let mut zero_sched = build_scheduler(
                policy,
                &MrConfig {
                    preemption: zero,
                    ..cfg.clone()
                },
            );
            let mut c = random_cluster(&mut rng, 2..=8);
            // Sprinkle deadlines (some urgent, some comfortable) and
            // reduce tasks — the latter must never be named.
            for j in 0..c.jobs.len() {
                if rng.next_below(2) == 0 {
                    c.jobs[j].deadline =
                        Some(SimTime::ZERO + SimDuration::from_secs(rng.range_inclusive(30, 400)));
                }
                for t in c.tasks[j].iter_mut() {
                    if rng.next_below(5) == 0 {
                        t.is_reduce = true;
                    }
                }
            }
            let mut kills: FxHashMap<u32, u32> = FxHashMap::default();
            let mut last_kill: FxHashMap<(u32, u32), SimTime> = FxHashMap::default();
            let mut next_attempt = 1u32;
            for step in 0u64..16 {
                let now_secs = 30 + step * 7;
                let now = SimTime::ZERO + SimDuration::from_secs(now_secs);
                // Random churn: start attempts (random node, random age,
                // reduces included) and retire some running tasks.
                for j in 0..c.jobs.len() {
                    for ti in 0..c.tasks[j].len() {
                        let t = &mut c.tasks[j][ti];
                        if !t.completed && t.running.is_empty() && rng.next_below(3) == 0 {
                            let age = rng.range_inclusive(0, 20);
                            let started = SimTime::ZERO + SimDuration::from_secs(now_secs - age);
                            let node = NodeId(rng.range_inclusive(1, 3) as u32);
                            t.running.push((next_attempt, node, started));
                            next_attempt += 1;
                        } else if !t.completed && !t.running.is_empty() && rng.next_below(6) == 0 {
                            t.running.clear();
                            t.completed = true;
                        }
                    }
                }
                let node = NodeId(rng.range_inclusive(1, 3) as u32);
                assert!(
                    c.reclaim(zero_sched.as_mut(), node, now).is_empty(),
                    "case {case}: zero-budget {} reclaimed",
                    zero_sched.name()
                );
                for v in c.reclaim(sched.as_mut(), node, now) {
                    total_kills += 1;
                    let j = c
                        .jobs
                        .iter()
                        .position(|j| j.id == v.job.0)
                        .unwrap_or_else(|| panic!("case {case}: unknown victim job {}", v.job));
                    let t = &c.tasks[j][v.task.0 as usize];
                    assert!(!t.is_reduce, "case {case}: reclaim named a reduce attempt");
                    assert!(!t.completed, "case {case}: reclaim named a completed task");
                    assert_eq!(
                        t.running.len(),
                        1,
                        "case {case}: victim is not a sole running attempt"
                    );
                    let (attempt, run_node, started) = t.running[0];
                    assert_eq!(
                        (attempt, run_node),
                        (v.attempt, node),
                        "case {case}: victim attempt not running on the asked node"
                    );
                    assert!(
                        now.since(started) >= tuning.min_attempt_age,
                        "case {case}: victim younger than min_attempt_age"
                    );
                    let b = c
                        .jobs
                        .iter()
                        .position(|j| j.id == v.beneficiary.0)
                        .unwrap_or_else(|| {
                            panic!("case {case}: unknown beneficiary {}", v.beneficiary)
                        });
                    assert!(
                        !c.pending(b).is_empty(),
                        "case {case}: beneficiary has nothing to dispatch"
                    );
                    // Budget: lifetime per-job kill cap, per-task cooldown.
                    let k = kills.entry(v.job.0).or_insert(0);
                    *k += 1;
                    assert!(
                        *k <= tuning.max_kills_per_job,
                        "case {case}: job {} exceeded the kill budget",
                        v.job
                    );
                    if let Some(&prev) = last_kill.get(&(v.job.0, v.task.0)) {
                        assert!(
                            now.since(prev) >= tuning.cooldown,
                            "case {case}: task re-victimized within cooldown"
                        );
                    }
                    last_kill.insert((v.job.0, v.task.0), now);
                    // Execute the kill: the attempt dies, the task requeues.
                    c.tasks[j][v.task.0 as usize].running.clear();
                }
            }
        }
    }
    // The harness must actually exercise kills, or everything above is
    // vacuously true.
    assert!(
        total_kills > 100,
        "only {total_kills} kills across all cases"
    );
}

/// A zero-budget preemption config (`max_kills_per_job == 0`, every other
/// knob maximally aggressive) is event-for-event identical to the default
/// disabled config on a real two-tenant cluster: the reclaim hook must
/// not perturb dispatch at all without a kill budget. Reference fluid
/// engine + whole-run event-trace fingerprints — the same pinning the
/// golden scheduler traces use.
#[test]
fn zero_budget_preemption_is_trace_identical() {
    use accelmr_des::SimDuration;

    use crate::builder::{ClusterBuilder, JobBuilder};
    use crate::config::PreemptionTuning;
    use crate::kernel::{FixedCostKernel, SumReducer};

    let run = |preemption: PreemptionTuning| -> (u64, u64) {
        let mut c = ClusterBuilder::new()
            .seed(77)
            .workers(4)
            .net(accelmr_net::NetConfig {
                fluid: accelmr_net::FluidEngine::Reference,
                ..accelmr_net::NetConfig::default()
            })
            .mr(MrConfig {
                scheduler: SchedulerPolicy::FairShare,
                preemption,
                ..MrConfig::default()
            })
            .deploy();
        c.sim.enable_trace(16);
        let job = |name: &str, tenant: &str, tasks: usize, units_per_task: u64| {
            JobBuilder::new(name)
                .synthetic(units_per_task * tasks as u64)
                .map_tasks(tasks)
                .kernel(FixedCostKernel::default())
                .tenant(tenant)
                .rpc_aggregate(SumReducer {
                    cycles_per_byte: 1.0,
                })
        };
        let mut session = c.session();
        session.submit(job("bulk", "batch", 16, 60_000_000));
        session.submit_after(
            SimDuration::from_secs(15),
            job("light", "interactive", 4, 20_000_000),
        );
        let rs = session.run_until_complete();
        assert!(rs.iter().all(|r| r.succeeded));
        assert!(rs
            .iter()
            .all(|r| r.preempted_attempts == 0 && r.wasted_slot_seconds == 0.0));
        (c.sim.trace().fingerprint(), c.sim.trace().recorded())
    };
    let disabled = run(PreemptionTuning::default());
    let zero_budget = run(PreemptionTuning {
        max_kills_per_job: 0,
        min_attempt_age: SimDuration::ZERO,
        cooldown: SimDuration::ZERO,
        slack_margin: SimDuration::from_secs(10_000),
    });
    assert_eq!(
        disabled, zero_budget,
        "zero-budget preemption perturbed the event stream"
    );
}
