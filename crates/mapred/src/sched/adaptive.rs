//! Heterogeneity-aware adaptive dispatch.
//!
//! The paper's mixed-cluster finding (§V, reproduced by
//! `core::hetero::stragglers_on_plain_nodes_dominate_cpu_bound_jobs`): with
//! placement-blind scheduling, the *slowest class of nodes sets the
//! CPU-bound job time*, so partial accelerator coverage buys far less than
//! its share. [`AdaptiveHetero`] is the remedy. It learns per-node,
//! per-kernel-family throughput online — an EWMA of work/second over
//! completed attempts — and uses the estimates three ways:
//!
//! 1. **Split sizing** ([`Scheduler::plan_splits`]): before anything is
//!    learned, inputs are *oversplit* (`oversplit × slots` tasks) so
//!    demand-driven dispatch lets fast nodes pull proportionally more
//!    work; once the cluster's speed spread is known, splits are sized
//!    proportionally to slot throughput (the paper's per-node-slots knob
//!    generalized to continuous weights).
//! 2. **Dispatch** ([`Scheduler::pick_task`]): fast nodes take the largest
//!    pending split, slow nodes the smallest (locality still preferred
//!    among candidates), and a *tail guard* holds the last tasks back from
//!    nodes slower than `tail_fraction ×` the best — the final splits are
//!    exactly the ones that become stragglers.
//! 3. **Speculation** ([`Scheduler::pick_straggler`]): speculative copies
//!    are only placed on nodes at least as fast as the one running the
//!    straggler, so duplicates actually overtake.

use accelmr_des::FxHashMap;
use accelmr_des::SimTime;
use accelmr_net::NodeId;

use crate::config::{AdaptiveTuning, MrConfig, TaskId};

use super::{NodeThroughput, SchedView, Scheduler, SplitPlan, SplitRequest, TaskCompletion};

#[derive(Clone, Copy, Debug)]
struct NodeStat {
    rate: f64,
    samples: u64,
}

/// The heterogeneity-aware scheduler. See the module docs for the
/// mechanism; construct via [`SchedulerPolicy::adaptive`](crate::SchedulerPolicy::adaptive)
/// or with explicit [`AdaptiveTuning`].
#[derive(Debug)]
pub struct AdaptiveHetero {
    tuning: AdaptiveTuning,
    slowdown: f64,
    /// kernel family → node → learned throughput.
    rates: FxHashMap<String, FxHashMap<NodeId, NodeStat>>,
}

impl AdaptiveHetero {
    /// Builds the scheduler with `tuning` knobs.
    pub fn new(tuning: AdaptiveTuning, cfg: &MrConfig) -> Self {
        AdaptiveHetero {
            tuning,
            slowdown: cfg.speculative_slowdown,
            rates: FxHashMap::default(),
        }
    }

    fn family(&self, kernel: &str) -> Option<&FxHashMap<NodeId, NodeStat>> {
        self.rates.get(kernel)
    }

    fn rate_of(&self, kernel: &str, node: NodeId) -> Option<f64> {
        self.family(kernel)
            .and_then(|m| m.get(&node))
            .map(|s| s.rate)
    }

    fn best_rate(&self, kernel: &str) -> f64 {
        self.family(kernel)
            .map(|m| m.values().map(|s| s.rate).fold(0.0, f64::max))
            .unwrap_or(0.0)
    }

    fn mean_rate(&self, kernel: &str) -> Option<f64> {
        let m = self.family(kernel)?;
        if m.is_empty() {
            return None;
        }
        Some(m.values().map(|s| s.rate).sum::<f64>() / m.len() as f64)
    }

    /// Slots on nodes fast enough to take the queue tail.
    fn fast_slots(&self, kernel: &str, slots_per_node: usize) -> usize {
        let best = self.best_rate(kernel);
        if best <= 0.0 {
            return 0;
        }
        let floor = self.tuning.tail_fraction * best;
        self.family(kernel)
            .map(|m| m.values().filter(|s| s.rate >= floor).count())
            .unwrap_or(0)
            * slots_per_node
    }
}

impl Scheduler for AdaptiveHetero {
    fn name(&self) -> &'static str {
        "adaptive-hetero"
    }

    fn plan_splits(&mut self, req: &SplitRequest<'_>) -> SplitPlan {
        // Learned weights only apply when every live node has an estimate
        // for this kernel family and the spread is worth acting on.
        let known: Vec<f64> = req
            .live_nodes
            .iter()
            .filter_map(|&n| self.rate_of(req.kernel, n))
            .collect();
        let fully_known = !req.live_nodes.is_empty() && known.len() == req.live_nodes.len();
        let spread_worth_it = fully_known && {
            let max = known.iter().copied().fold(f64::MIN, f64::max);
            let min = known.iter().copied().fold(f64::MAX, f64::min);
            min > 0.0 && max / min >= self.tuning.spread_threshold
        };
        let tasks = match req.requested_tasks {
            Some(n) => n.max(1),
            // Learned (weighted or near-uniform): one split per slot —
            // oversplitting would only pay per-task overhead. In
            // particular, a family whose learned spread is small (e.g.
            // feed-bound data jobs) goes back to the classic plan.
            None if fully_known => req.default_tasks.max(1),
            // Unlearned: oversplit so demand-driven dispatch can shift
            // work toward whoever turns out to be fast.
            None => ((self.tuning.oversplit * req.default_tasks as f64).ceil() as usize).max(1),
        };
        if spread_worth_it {
            // Weight task i by the throughput of the slot it round-robins
            // onto: fast nodes' splits are proportionally larger.
            let mut slot_rates: Vec<f64> = Vec::new();
            for &n in req.live_nodes {
                let r = self.rate_of(req.kernel, n).unwrap_or(1.0);
                slot_rates.extend(std::iter::repeat_n(r, req.slots_per_node.max(1)));
            }
            if slot_rates.is_empty() {
                return SplitPlan::Uniform { tasks };
            }
            SplitPlan::Weighted {
                weights: (0..tasks)
                    .map(|i| slot_rates[i % slot_rates.len()])
                    .collect(),
            }
        } else {
            SplitPlan::Uniform { tasks }
        }
    }

    fn pick_task(&mut self, view: &SchedView<'_>, node: NodeId) -> Option<usize> {
        if view.pending.is_empty() {
            return None;
        }
        let my_rate = self.rate_of(view.kernel, node);

        // Tail guard: once the queue fits into the fast nodes' slots, a
        // known-slow node stops taking work — whatever it would grab now
        // would finish last and set the job time.
        if let Some(my) = my_rate {
            let best = self.best_rate(view.kernel);
            if best > 0.0 && my < self.tuning.tail_fraction * best {
                let fast = self.fast_slots(view.kernel, view.slots_per_node);
                if fast > 0 && view.pending.len() <= fast {
                    return None;
                }
            }
        }

        // Locality still wins among candidates (data tasks).
        let local: Vec<usize> = (0..view.pending.len())
            .filter(|&i| {
                let t = view.tasks.get(view.pending[i].0 as usize);
                t.hints.contains(&node)
            })
            .collect();
        let pool: Vec<usize> = if local.is_empty() {
            (0..view.pending.len()).collect()
        } else {
            local
        };

        let size = |i: usize| view.tasks.get(view.pending[i].0 as usize).size;
        match my_rate {
            // Unknown node: take the queue front (and start learning).
            None => pool.first().copied(),
            Some(my) => {
                let mean = self.mean_rate(view.kernel).unwrap_or(my);
                let mut best_i = pool[0];
                for &i in &pool[1..] {
                    let better = if my >= mean {
                        // Fast node: largest split (it can afford it).
                        size(i) > size(best_i)
                    } else {
                        // Slow node: smallest split (bound its straggle).
                        size(i) < size(best_i)
                    };
                    if better {
                        best_i = i;
                    }
                }
                Some(best_i)
            }
        }
    }

    fn pick_straggler(
        &mut self,
        view: &SchedView<'_>,
        node: NodeId,
        now: SimTime,
    ) -> Option<TaskId> {
        if view.completed_task_times.is_empty() {
            return None;
        }
        let mean_ns: f64 = view
            .completed_task_times
            .iter()
            .map(|d| d.as_nanos() as f64)
            .sum::<f64>()
            / view.completed_task_times.len() as f64;
        let threshold = mean_ns * self.slowdown;
        let my_rate = self.rate_of(view.kernel, node);
        let mut best: Option<(TaskId, u64)> = None;
        for i in 0..view.tasks.len() {
            let ts = view.tasks.get(i);
            if ts.completed || ts.running.len() != 1 {
                continue;
            }
            let (_, run_node, started) = ts.running[0];
            if run_node == node {
                continue;
            }
            // Placement filter: only duplicate onto a node at least as
            // fast as the current runner (unknown speeds are allowed — the
            // copy doubles as a probe).
            if let (Some(my), Some(theirs)) = (my_rate, self.rate_of(view.kernel, run_node)) {
                if my < theirs {
                    continue;
                }
            }
            let elapsed = now.since(started).as_nanos();
            if (elapsed as f64) > threshold && best.map(|(_, e)| elapsed > e).unwrap_or(true) {
                best = Some((TaskId(i as u32), elapsed));
            }
        }
        best.map(|(t, _)| t)
    }

    fn on_task_completed(&mut self, completion: &TaskCompletion<'_>) {
        // Reduce attempts are fetch-bound, not kernel-bound: excluded from
        // the throughput model.
        if completion.is_reduce || completion.work == 0 {
            return;
        }
        let secs = completion.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let obs = completion.work as f64 / secs;
        let stat = self
            .rates
            .entry(completion.kernel.to_string())
            .or_default()
            .entry(completion.node)
            .or_insert(NodeStat {
                rate: obs,
                samples: 0,
            });
        if stat.samples > 0 {
            let a = self.tuning.ewma_alpha;
            stat.rate = a * obs + (1.0 - a) * stat.rate;
        } else {
            stat.rate = obs;
        }
        stat.samples += 1;
    }

    fn on_node_dead(&mut self, node: NodeId) {
        // Forget the dead node's estimates: best/mean/fast-slot
        // computations must only ever see nodes that can still take work.
        // audit:allow(map-order): independent removal from each per-kernel EWMA table; visit order cannot be observed
        for family in self.rates.values_mut() {
            family.remove(&node);
        }
    }

    fn on_node_join(&mut self, node: NodeId) {
        // A (re)joining node is seeded as unlearned: it takes queue-front
        // work as a probe (see `pick_task`), and split planning keeps it
        // out of weighted sizing until it has estimates. Stale rates from
        // a previous incarnation of the same id must not steer dispatch.
        // audit:allow(map-order): independent removal from each per-kernel EWMA table; visit order cannot be observed
        for family in self.rates.values_mut() {
            family.remove(&node);
        }
    }

    fn throughput_estimates(&self, kernel: &str) -> Vec<NodeThroughput> {
        let mut out: Vec<NodeThroughput> = self
            .family(kernel)
            .map(|m| {
                m.iter()
                    .map(|(&node, s)| NodeThroughput {
                        node,
                        throughput: s.rate,
                        samples: s.samples,
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.sort_by_key(|e| e.node);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{JobId, MrConfig};
    use crate::sched::{TaskLookup, TaskView};
    use accelmr_des::SimDuration;

    fn sched() -> AdaptiveHetero {
        AdaptiveHetero::new(AdaptiveTuning::default(), &MrConfig::default())
    }

    fn complete(s: &mut AdaptiveHetero, node: NodeId, work: u64, secs: f64) {
        s.on_task_completed(&TaskCompletion {
            job: JobId(0),
            task: TaskId(0),
            node,
            kernel: "k",
            is_reduce: false,
            elapsed: SimDuration::from_secs_f64(secs),
            work,
        });
    }

    #[test]
    fn ewma_learns_per_node_rates() {
        let mut s = sched();
        complete(&mut s, NodeId(1), 1000, 1.0); // 1000/s
        complete(&mut s, NodeId(2), 100, 1.0); // 100/s
        assert_eq!(s.rate_of("k", NodeId(1)), Some(1000.0));
        assert_eq!(s.rate_of("k", NodeId(2)), Some(100.0));
        // Second observation folds in with alpha = 0.4.
        complete(&mut s, NodeId(1), 500, 1.0);
        let r = s.rate_of("k", NodeId(1)).unwrap();
        assert!((r - (0.4 * 500.0 + 0.6 * 1000.0)).abs() < 1e-9, "{r}");
        // Families are independent.
        assert_eq!(s.rate_of("other", NodeId(1)), None);
        // Reduce attempts don't pollute the model.
        s.on_task_completed(&TaskCompletion {
            job: JobId(0),
            task: TaskId(9),
            node: NodeId(3),
            kernel: "k",
            is_reduce: true,
            elapsed: SimDuration::from_secs(1),
            work: 1_000_000,
        });
        assert_eq!(s.rate_of("k", NodeId(3)), None);
    }

    fn view<'a>(
        pending: &'a [TaskId],
        tasks: &'a dyn TaskLookup,
        times: &'a [SimDuration],
    ) -> SchedView<'a> {
        let (running_slots, running_incomplete) = crate::sched::view_counts(tasks);
        SchedView {
            job: JobId(0),
            kernel: "k",
            tenant: "default",
            weight: 1.0,
            deadline: None,
            submitted: SimTime::ZERO,
            eligible: true,
            cluster_slots: 4,
            pending,
            tasks,
            running_slots,
            running_incomplete,
            completed_task_times: times,
            slots_per_node: 2,
        }
    }

    fn map_task(size: u64) -> TaskView<'static> {
        TaskView {
            hints: &[],
            is_reduce: false,
            completed: false,
            running: &[],
            size,
        }
    }

    #[test]
    fn fast_nodes_take_largest_splits_slow_nodes_smallest() {
        let mut s = sched();
        complete(&mut s, NodeId(1), 1000, 1.0);
        complete(&mut s, NodeId(2), 100, 1.0);
        let tasks = [map_task(10), map_task(50), map_task(30)];
        let pending = [TaskId(0), TaskId(1), TaskId(2)];
        // Plenty pending: no tail guard. Fast node grabs the 50, slow the 10.
        let v = view(&pending, &tasks, &[]);
        assert_eq!(s.pick_task(&v, NodeId(1)), Some(1));
        assert_eq!(s.pick_task(&v, NodeId(2)), Some(0));
        // Unknown node: queue front.
        assert_eq!(s.pick_task(&v, NodeId(3)), Some(0));
    }

    #[test]
    fn tail_guard_holds_queue_tail_back_from_slow_nodes() {
        let mut s = sched();
        complete(&mut s, NodeId(1), 1000, 1.0);
        complete(&mut s, NodeId(2), 100, 1.0); // 10x slower than best
        let tasks = [map_task(10), map_task(20)];
        let pending = [TaskId(0), TaskId(1)];
        let v = view(&pending, &tasks, &[]);
        // 2 pending ≤ 2 fast slots (1 fast node × 2 slots): slow node held.
        assert_eq!(s.pick_task(&v, NodeId(2)), None);
        // The fast node still dispatches.
        assert!(s.pick_task(&v, NodeId(1)).is_some());
        // A long queue disables the guard (slow nodes must help).
        let tasks5 = [
            map_task(1),
            map_task(2),
            map_task(3),
            map_task(4),
            map_task(5),
        ];
        let pending5: Vec<TaskId> = (0..5).map(TaskId).collect();
        let v5 = view(&pending5, &tasks5, &[]);
        assert!(s.pick_task(&v5, NodeId(2)).is_some());
    }

    #[test]
    fn speculative_copies_only_land_on_not_slower_nodes() {
        let mut s = sched();
        complete(&mut s, NodeId(1), 1000, 1.0);
        complete(&mut s, NodeId(2), 100, 1.0);
        let started = SimTime::ZERO;
        let running_slow: [(u32, NodeId, SimTime); 1] = [(1, NodeId(2), started)];
        let tasks = [TaskView {
            hints: &[],
            is_reduce: false,
            completed: false,
            running: &running_slow,
            size: 100,
        }];
        let times = [SimDuration::from_secs(1)];
        let now = SimTime::ZERO + SimDuration::from_secs(100);
        let v = view(&[], &tasks, &times);
        // Fast node duplicates the slow node's straggler…
        assert_eq!(s.pick_straggler(&v, NodeId(1), now), Some(TaskId(0)));
        // …but another slow node does not volunteer for a fast runner.
        let running_fast: [(u32, NodeId, SimTime); 1] = [(1, NodeId(1), started)];
        let tasks_fast = [TaskView {
            hints: &[],
            is_reduce: false,
            completed: false,
            running: &running_fast,
            size: 100,
        }];
        let v2 = view(&[], &tasks_fast, &times);
        assert_eq!(s.pick_straggler(&v2, NodeId(2), now), None);
    }

    #[test]
    fn plan_oversplits_until_learned_then_weights_by_rate() {
        let mut s = sched();
        let live = [NodeId(1), NodeId(2)];
        let req = SplitRequest {
            job: JobId(0),
            kernel: "k",
            total: 1000,
            requested_tasks: None,
            default_tasks: 4,
            live_nodes: &live,
            slots_per_node: 2,
        };
        // Nothing learned: oversplit 3× the slot count.
        assert_eq!(s.plan_splits(&req), SplitPlan::Uniform { tasks: 12 });
        // Learned 3x spread: one split per slot, weighted by rate.
        complete(&mut s, NodeId(1), 300, 1.0);
        complete(&mut s, NodeId(2), 100, 1.0);
        match s.plan_splits(&req) {
            SplitPlan::Weighted { weights } => {
                assert_eq!(weights, vec![300.0, 300.0, 100.0, 100.0]);
            }
            other => panic!("expected weighted plan, got {other:?}"),
        }
        // An explicit task count is always honored.
        let req_fixed = SplitRequest {
            requested_tasks: Some(3),
            ..req
        };
        match s.plan_splits(&req_fixed) {
            SplitPlan::Weighted { weights } => assert_eq!(weights.len(), 3),
            other => panic!("expected weighted plan, got {other:?}"),
        }
        // Node death forgets its estimates and unlocks re-probing.
        s.on_node_dead(NodeId(1));
        assert_eq!(s.rate_of("k", NodeId(1)), None);
        assert_eq!(s.throughput_estimates("k").len(), 1);
    }

    #[test]
    fn rejoining_node_is_seeded_unlearned() {
        let mut s = sched();
        complete(&mut s, NodeId(1), 1000, 1.0);
        complete(&mut s, NodeId(2), 100, 1.0);
        // Node 2 leaves and a new machine joins under the recycled id: its
        // old (slow) estimate must not survive the join.
        s.on_node_dead(NodeId(2));
        s.on_node_join(NodeId(2));
        assert_eq!(s.rate_of("k", NodeId(2)), None);
        // Unlearned: takes the queue front as a probe instead of being
        // tail-guarded off the work.
        let tasks = [map_task(10), map_task(50)];
        let pending = [TaskId(0), TaskId(1)];
        let v = view(&pending, &tasks, &[]);
        assert_eq!(s.pick_task(&v, NodeId(2)), Some(0));
    }
}
