//! # accelmr-mapred — Hadoop-like distributed MapReduce runtime
//!
//! The cluster-level half of the paper's two-level architecture: a
//! JobTracker on the head node scheduling map/reduce tasks onto per-node
//! TaskTrackers (two map slots each), over the HDFS-like DFS and the
//! simulated interconnect. Mechanisms modeled explicitly because the
//! paper's results depend on them:
//!
//! * **split/record data distribution** (Figure 3): split =
//!   FileSize/NumMappers, records of one 64 MB DFS block;
//! * **the RecordReader feed path**: per-stream-capped streaming from the
//!   (usually local) DataNode, read-ahead overlapping map compute — the
//!   bottleneck that hides acceleration in Figures 4/5;
//! * **heartbeat-paced scheduling** with locality preference — part of the
//!   runtime floor visible in Figures 7/8;
//! * **fault tolerance**: heartbeat-silence detection, task re-execution,
//!   replica-retrying reads, lost-output map re-execution for shuffles;
//! * **speculative execution** of stragglers (off by default, as in the
//!   paper's configuration).
//!
//! Map kernels are pluggable ([`TaskKernel`]); the hybrid crate provides
//! the paper's Java/Cell kernels on top of the Cell BE simulator.
//!
//! The user-facing surface is [`ClusterBuilder`] (fluent deployment),
//! [`JobBuilder`] (fluent job description), and [`Session`] (N concurrent
//! jobs with staggered arrivals, driven to completion deterministically).
//! The positional `deploy_cluster` / blocking `run_job` helpers are
//! deprecated wrappers over the same machinery.
//!
//! ## Invariants callers rely on
//!
//! * **Dynamic membership.** The fixed-worker-set assumption is lifted:
//!   [`Session::add_node_at`] / [`Session::remove_node_at`] (and the
//!   [`ChurnSchedule`] helper) change membership mid-run. Joins register
//!   end to end — fabric links, DataNode placement admission, TaskTracker
//!   heartbeat dispatch — and the JobTracker re-plans jobs that have not
//!   dispatched yet; departures recover through heartbeat-silence
//!   detection, task re-execution, replica-retrying reads, and DFS
//!   re-replication. Schedulers observe both via
//!   [`sched::Scheduler::on_node_join`] / `on_node_dead`.
//! * **Burst-friendly I/O.** TaskTrackers fan a record's segment reads
//!   and a reducer's whole fetch wave out in one simulated instant; the
//!   fabric coalesces each wave into one rate solve. Keep new I/O call
//!   sites burst-shaped.
//! * **Trace pinning.** Golden event-stream fingerprints (scheduler
//!   port equivalence, determinism suites) run on
//!   `FluidEngine::Reference`, which is event-for-event stable; the
//!   default incremental engine may legitimately reorder events within an
//!   instant while producing identical timings.

pub mod builder;
pub mod cluster;
pub mod config;
pub mod job;
pub mod jobtracker;
pub mod kernel;
pub mod msgs;
pub mod sched;
pub mod session;
pub mod tasktracker;

pub use builder::{ClusterBuilder, JobBuilder};
#[allow(deprecated)]
pub use cluster::{deploy_cluster, run_job};
pub use cluster::{deploy_mr, MrCluster, MrHandle, PreloadSpec};
pub use config::{
    AdaptiveTuning, JobId, MrConfig, MrConfigError, PreemptionTuning, SchedulerPolicy, TaskId,
};
pub use job::{
    JobError, JobInput, JobResult, JobSpec, JobSpecError, OutputSink, ReduceSpec, TaskDescriptor,
    TaskMetrics, TaskWork,
};
pub use jobtracker::JobTracker;
pub use kernel::{
    FixedCostKernel, NodeEnv, NodeEnvFactory, NullEnv, NullEnvFactory, RecordCtx, RecordOutcome,
    ReduceKernel, SumReducer, TaskKernel, UnitsOutcome,
};
pub use msgs::{CrashTaskTracker, InjectGray, JobComplete, SetHeartbeatLoss, SubmitJob};
pub use sched::{
    build_scheduler, AdaptiveHetero, DeadlineSlack, FairShare, Fifo, LocalityFirst, NodeThroughput,
    ReclaimVictim, SchedView, Scheduler, SplitPlan, SplitRequest, TaskCompletion, TaskLookup,
    TaskView,
};
pub use session::{ChurnOp, ChurnSchedule, FaultOp, FaultPlan, JobHandle, JobRequest, Session};
pub use tasktracker::TaskTracker;

#[cfg(test)]
mod tests;
