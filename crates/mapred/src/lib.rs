//! # accelmr-mapred — Hadoop-like distributed MapReduce runtime
//!
//! The cluster-level half of the paper's two-level architecture: a
//! JobTracker on the head node scheduling map/reduce tasks onto per-node
//! TaskTrackers (two map slots each), over the HDFS-like DFS and the
//! simulated interconnect. Mechanisms modeled explicitly because the
//! paper's results depend on them:
//!
//! * **split/record data distribution** (Figure 3): split =
//!   FileSize/NumMappers, records of one 64 MB DFS block;
//! * **the RecordReader feed path**: per-stream-capped streaming from the
//!   (usually local) DataNode, read-ahead overlapping map compute — the
//!   bottleneck that hides acceleration in Figures 4/5;
//! * **heartbeat-paced scheduling** with locality preference — part of the
//!   runtime floor visible in Figures 7/8;
//! * **fault tolerance**: heartbeat-silence detection, task re-execution,
//!   replica-retrying reads, lost-output map re-execution for shuffles;
//! * **speculative execution** of stragglers (off by default, as in the
//!   paper's configuration).
//!
//! Map kernels are pluggable ([`TaskKernel`]); the hybrid crate provides
//! the paper's Java/Cell kernels on top of the Cell BE simulator.
//!
//! The user-facing surface is [`ClusterBuilder`] (fluent deployment),
//! [`JobBuilder`] (fluent job description), and [`Session`] (N concurrent
//! jobs with staggered arrivals, driven to completion deterministically).
//! The positional `deploy_cluster` / blocking `run_job` helpers are
//! deprecated wrappers over the same machinery.

#![warn(missing_docs)]

pub mod builder;
pub mod cluster;
pub mod config;
pub mod job;
pub mod jobtracker;
pub mod kernel;
pub mod msgs;
pub mod sched;
pub mod session;
pub mod tasktracker;

pub use builder::{ClusterBuilder, JobBuilder};
#[allow(deprecated)]
pub use cluster::{deploy_cluster, run_job};
pub use cluster::{deploy_mr, MrCluster, MrHandle, PreloadSpec};
pub use config::{AdaptiveTuning, JobId, MrConfig, MrConfigError, SchedulerPolicy, TaskId};
pub use job::{
    JobInput, JobResult, JobSpec, OutputSink, ReduceSpec, TaskDescriptor, TaskMetrics, TaskWork,
};
pub use jobtracker::JobTracker;
pub use kernel::{
    FixedCostKernel, NodeEnv, NodeEnvFactory, NullEnv, NullEnvFactory, RecordCtx, RecordOutcome,
    ReduceKernel, SumReducer, TaskKernel, UnitsOutcome,
};
pub use msgs::{CrashTaskTracker, JobComplete, SubmitJob};
pub use sched::{
    build_scheduler, AdaptiveHetero, Fifo, LocalityFirst, NodeThroughput, SchedView, Scheduler,
    SplitPlan, SplitRequest, TaskCompletion, TaskView,
};
pub use session::{JobHandle, JobRequest, Session};
pub use tasktracker::TaskTracker;

#[cfg(test)]
mod tests;
