//! Job descriptions, task descriptors and results.

use std::sync::Arc;

use accelmr_des::{SimDuration, SimTime};
use accelmr_dfs::msgs::BlockLoc;
use accelmr_net::NodeId;

use crate::config::{JobId, SchedulerPolicy, TaskId};
use crate::kernel::{ReduceKernel, TaskKernel};
use crate::sched::NodeThroughput;

/// What a job consumes.
#[derive(Clone, Debug)]
pub enum JobInput {
    /// A DFS file, split into `FileSize / NumMappers` byte ranges processed
    /// as `record_bytes` records (the paper's Figure 3 data distribution).
    File {
        /// DFS path (must be preloaded or written beforehand).
        path: String,
        /// Record granularity; `None` = one DFS block (64 MB, per paper).
        record_bytes: Option<u64>,
    },
    /// A CPU-intensive job with no input data: `total_units` split evenly
    /// across map tasks (the Pi estimator's samples).
    Synthetic {
        /// Total work units (samples).
        total_units: u64,
    },
}

/// Where map output goes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutputSink {
    /// No output (the paper's EmptyMapper).
    Discard,
    /// Output accounted and digested, but not written back (kernel-level
    /// verification without write traffic).
    Digest,
    /// Output written to a DFS file (one per task: `<path>/part-NNNNN`).
    Dfs {
        /// Output directory path.
        path: String,
        /// Replication of output blocks (`None` = DFS default).
        replication: Option<usize>,
    },
}

/// The reduce phase shape.
#[derive(Clone)]
pub enum ReduceSpec {
    /// Map-only job.
    None,
    /// Tiny per-task results aggregated at the JobTracker (the shape of
    /// Hadoop's PiEstimator with a single lightweight reducer).
    RpcAggregate {
        /// The fold applied to collected pairs.
        reducer: Arc<dyn ReduceKernel>,
    },
    /// Full shuffle: every map task's output is partitioned across
    /// `reducers` reduce tasks which fetch, merge, and (optionally) write.
    Shuffle {
        /// Number of reduce tasks.
        reducers: usize,
        /// The merge kernel.
        reducer: Arc<dyn ReduceKernel>,
        /// Whether reducers write their merged partition to DFS.
        write_output: bool,
    },
}

impl std::fmt::Debug for ReduceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceSpec::None => write!(f, "ReduceSpec::None"),
            ReduceSpec::RpcAggregate { reducer } => {
                write!(f, "ReduceSpec::RpcAggregate({})", reducer.name())
            }
            ReduceSpec::Shuffle {
                reducers,
                reducer,
                write_output,
            } => write!(
                f,
                "ReduceSpec::Shuffle({} x {}, write={})",
                reducers,
                reducer.name(),
                write_output
            ),
        }
    }
}

/// A complete job description.
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable name.
    pub name: String,
    /// Input description.
    pub input: JobInput,
    /// The map kernel.
    pub kernel: Arc<dyn TaskKernel>,
    /// Number of map tasks; `None` = one per configured map slot
    /// (the paper's `NumMappers`).
    pub num_map_tasks: Option<usize>,
    /// Map output routing.
    pub output: OutputSink,
    /// Reduce phase.
    pub reduce: ReduceSpec,
    /// Per-job scheduling policy. `None` = the cluster default
    /// ([`MrConfig::scheduler`](crate::MrConfig)); `Some` instantiates a
    /// fresh scheduler for this job alone (an adaptive override therefore
    /// learns only from this job's own attempts). Job-*level* decisions
    /// ([`Scheduler::pick_job`](crate::sched::Scheduler::pick_job)) always
    /// go to the cluster scheduler — an override only governs decisions
    /// within its own job.
    pub scheduler: Option<SchedulerPolicy>,
    /// The tenant this job bills its slot usage to (multi-tenant fairness
    /// accounting; `"default"` when unset).
    pub tenant: String,
    /// Fair-share weight (> 0, default 1.0): a tenant's entitled share is
    /// proportional to its weight under
    /// [`FairShare`](crate::sched::FairShare) scheduling.
    pub weight: f64,
    /// Completion deadline (absolute simulated instant). Consumed by
    /// deadline-aware policies ([`DeadlineSlack`](crate::sched::DeadlineSlack))
    /// and reported back via [`JobResult::deadline_met`].
    pub deadline: Option<SimTime>,
}

/// A rejected [`JobSpec`], detected at build/submit time
/// ([`JobSpec::validate`]). Same deploy-time-typed-error style as
/// [`MrConfigError`](crate::MrConfigError).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum JobSpecError {
    /// `weight` is zero, negative, or not finite: the job's tenant would be
    /// entitled to no share under weighted fair scheduling and could
    /// starve forever.
    NonPositiveWeight {
        /// The rejected weight.
        weight: f64,
    },
    /// `deadline_at` is not after the submission instant: the deadline is
    /// already missed when the job enters the queue.
    DeadlineInPast {
        /// The rejected deadline.
        deadline: SimTime,
        /// The instant the job would be submitted.
        submit: SimTime,
    },
}

impl std::fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobSpecError::NonPositiveWeight { weight } => {
                write!(f, "weight must be positive and finite, got {weight}")
            }
            JobSpecError::DeadlineInPast { deadline, submit } => write!(
                f,
                "deadline_at ({deadline}) must lie after the submission \
                 instant ({submit}); the job would be born overdue"
            ),
        }
    }
}

impl std::error::Error for JobSpecError {}

impl JobSpec {
    /// Validates fairness/deadline invariants against the instant the job
    /// will be submitted. Called by
    /// [`Session::submit`](crate::Session::submit) (and, with
    /// `submit_at = 0`, by [`JobBuilder::build`](crate::JobBuilder::build));
    /// call it directly to surface the typed error instead of a panic.
    pub fn validate(&self, submit_at: SimTime) -> Result<(), JobSpecError> {
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(JobSpecError::NonPositiveWeight {
                weight: self.weight,
            });
        }
        if let Some(deadline) = self.deadline {
            if deadline <= submit_at {
                return Err(JobSpecError::DeadlineInPast {
                    deadline,
                    submit: submit_at,
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JobSpec({}, kernel={}, maps={:?})",
            self.name,
            self.kernel.name(),
            self.num_map_tasks
        )
    }
}

/// Concrete work shipped to a TaskTracker.
#[derive(Clone, Debug)]
pub enum TaskWork {
    /// Map a byte range of a file.
    MapRange {
        /// Input file path.
        path: String,
        /// Content seed of the file.
        file_seed: u64,
        /// Split start offset (inclusive).
        start: u64,
        /// Split end offset (exclusive).
        end: u64,
        /// Record granularity.
        record_bytes: u64,
        /// Blocks overlapping the split, with live replica locations
        /// (computed by the JobTracker at submission, like Hadoop's
        /// client-side split metadata).
        blocks: Vec<BlockLoc>,
    },
    /// Map a synthetic unit batch.
    MapUnits {
        /// Units in this task.
        units: u64,
        /// Task index (RNG stream derivation).
        index: u64,
    },
    /// Reduce: fetch partition fragments from map nodes, merge, maybe write.
    Reduce {
        /// `(node, bytes)` fragments to fetch.
        fetches: Vec<(NodeId, u64)>,
        /// Pairs expected (for the reduce kernel's time model).
        pairs: u64,
        /// Write the merged output to DFS.
        write_output: bool,
        /// Output path for written reduces.
        output_path: String,
    },
}

/// A task assignment (work + attempt bookkeeping + execution plumbing).
#[derive(Clone)]
pub struct TaskDescriptor {
    /// Owning job.
    pub job: JobId,
    /// Task id within the job.
    pub task: TaskId,
    /// Attempt number (re-executions and speculative copies increment it).
    pub attempt: u32,
    /// The work itself.
    pub work: TaskWork,
    /// The kernel to execute (shared, stateless; node state lives in the
    /// TaskTracker's `NodeEnv`).
    pub kernel: Arc<dyn TaskKernel>,
    /// Where map output goes.
    pub output: OutputSink,
    /// Precomputed merge duration for reduce tasks (the JobTracker owns the
    /// reduce kernel and evaluates its time model at task-build time).
    pub reduce_merge_time: Option<SimDuration>,
}

impl std::fmt::Debug for TaskDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TaskDescriptor({} {} attempt {}, kernel={})",
            self.job,
            self.task,
            self.attempt,
            self.kernel.name()
        )
    }
}

/// Per-task execution metrics reported back to the JobTracker.
#[derive(Clone, Debug, Default)]
pub struct TaskMetrics {
    /// Wall time from assignment to completion.
    pub elapsed: SimDuration,
    /// Bytes read from the DFS.
    pub bytes_read: u64,
    /// Bytes of map output produced.
    pub bytes_output: u64,
    /// Records processed.
    pub records: u64,
    /// Records read from a replica on the task's own node.
    pub local_reads: u64,
    /// Records read over the network.
    pub remote_reads: u64,
    /// Time spent waiting on record feed (not overlapped with compute).
    pub feed_stall: SimDuration,
    /// Time spent computing.
    pub compute: SimDuration,
}

/// Why a job terminated without success. Typed so chaos harnesses (and
/// callers generally) can distinguish "a task ran out of attempts" from
/// "the job-level watchdog declared it unservable" — the latter replaces
/// the historical failure mode of hanging the session forever when, e.g.,
/// every replica of an input block is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobError {
    /// A task failed `attempts` times, reaching
    /// [`MrConfig::max_attempts`](crate::MrConfig::max_attempts).
    TaskFailed {
        /// The task that exhausted its attempts.
        task: TaskId,
        /// How many attempts it burned.
        attempts: u32,
    },
    /// The liveness watchdog ([`job_stall_timeout`](crate::MrConfig::job_stall_timeout))
    /// saw no dispatch or completed attempt for `idle_for`: the job cannot
    /// make progress (unservable input, every eligible node blacklisted, ...).
    Stalled {
        /// Time since the job last dispatched or completed an attempt.
        idle_for: SimDuration,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::TaskFailed { task, attempts } => {
                write!(f, "{task} failed after {attempts} attempts")
            }
            JobError::Stalled { idle_for } => {
                write!(f, "no progress for {idle_for}; job is unservable")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Final job outcome delivered to the submitting client.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Job id.
    pub job: JobId,
    /// Job name.
    pub name: String,
    /// `true` when every task eventually succeeded.
    pub succeeded: bool,
    /// Why the job failed, when `succeeded` is false and the cause was
    /// task-level (`None` for successful jobs; also `None` on legacy
    /// failure paths that predate typed errors, e.g. missing input files).
    pub error: Option<JobError>,
    /// Submission-to-completion wall time.
    pub elapsed: SimDuration,
    /// Map tasks executed.
    pub map_tasks: u32,
    /// Reduce tasks executed.
    pub reduce_tasks: u32,
    /// Total attempts (≥ map+reduce when failures/speculation occurred).
    pub attempts: u32,
    /// Attempts that failed.
    pub failed_attempts: u32,
    /// Speculative duplicate attempts launched.
    pub speculative_attempts: u32,
    /// Bytes read from DFS by all tasks.
    pub bytes_read: u64,
    /// Map output bytes.
    pub bytes_output: u64,
    /// Record reads served node-locally.
    pub local_reads: u64,
    /// Record reads served remotely.
    pub remote_reads: u64,
    /// Aggregated key/value result (reduce output, or raw map pairs for
    /// map-only jobs).
    pub kv: Vec<(u64, u64)>,
    /// Order-independent digest over per-record output checksums
    /// `(digest, record count)` — exactly-once verification.
    pub digest: (u64, u64),
    /// Completed map task durations (speculation / distribution analysis).
    pub task_times: Vec<SimDuration>,
    /// The tenant the job billed its slot usage to.
    pub tenant: String,
    /// The job's fair-share weight.
    pub weight: f64,
    /// The job's deadline, if one was set.
    pub deadline: Option<SimTime>,
    /// Whether the job completed by its deadline (`None` when no deadline
    /// was set).
    pub deadline_met: Option<bool>,
    /// Total slot-time the job occupied: the integral of its concurrently
    /// running attempts over time, in slot-seconds (fairness accounting —
    /// tenants' `slot_seconds` ratios approach their weight ratios under
    /// fair-share scheduling while both stay busy).
    pub slot_seconds: f64,
    /// The job's share timeline: `(instant, running attempts)` at every
    /// change of its occupied-slot count, from first dispatch to
    /// completion.
    pub share_timeline: Vec<(SimTime, u32)>,
    /// Attempts of *this* job killed by preemptive slot reclamation
    /// ([`Scheduler::reclaim`](crate::sched::Scheduler::reclaim)); each
    /// one re-entered the pending queue and re-executed. Always 0 with
    /// preemption disabled (the default).
    pub preempted_attempts: u32,
    /// Victim runtime discarded on this job's behalf, in slot-seconds:
    /// the job was the beneficiary of preemption kills and
    /// [`slot_seconds`](JobResult::slot_seconds) was charged the victims'
    /// partial runtime — the wasted-work price of the slots it reclaimed.
    pub wasted_slot_seconds: f64,
    /// Name of the scheduling policy that drove this job.
    pub scheduler: &'static str,
    /// Every dispatch the scheduler made, in order: `(task, node)`.
    /// Includes re-executions and speculative duplicates.
    pub dispatch_log: Vec<(TaskId, NodeId)>,
    /// Per-node throughput estimates for this job's kernel family, when
    /// the scheduler learns them (adaptive policies; empty otherwise).
    pub node_throughput: Vec<NodeThroughput>,
}

impl JobResult {
    /// The aggregated value under `key`, if the job emitted one.
    pub fn value(&self, key: u64) -> Option<u64> {
        self.kv.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Dispatches per node, ascending by node id (derived from
    /// [`dispatch_log`](JobResult::dispatch_log)).
    pub fn dispatch_counts(&self) -> Vec<(NodeId, u32)> {
        let mut counts: std::collections::BTreeMap<NodeId, u32> = std::collections::BTreeMap::new();
        for &(_, node) in &self.dispatch_log {
            *counts.entry(node).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{FixedCostKernel, SumReducer};

    #[test]
    fn spec_debug_formats() {
        let spec = JobSpec {
            name: "t".into(),
            input: JobInput::Synthetic { total_units: 10 },
            kernel: Arc::new(FixedCostKernel::default()),
            num_map_tasks: Some(4),
            output: OutputSink::Discard,
            reduce: ReduceSpec::RpcAggregate {
                reducer: Arc::new(SumReducer {
                    cycles_per_byte: 0.0,
                }),
            },
            scheduler: None,
            tenant: "default".into(),
            weight: 1.0,
            deadline: None,
        };
        let s = format!("{spec:?}");
        assert!(s.contains("fixed-cost"));
        let r = format!("{:?}", spec.reduce);
        assert!(r.contains("RpcAggregate"));
    }

    #[test]
    fn validate_rejects_non_positive_weight() {
        let mut spec = JobSpec {
            name: "w".into(),
            input: JobInput::Synthetic { total_units: 1 },
            kernel: Arc::new(FixedCostKernel::default()),
            num_map_tasks: None,
            output: OutputSink::Discard,
            reduce: ReduceSpec::None,
            scheduler: None,
            tenant: "t".into(),
            weight: 0.0,
            deadline: None,
        };
        assert_eq!(
            spec.validate(SimTime::ZERO),
            Err(JobSpecError::NonPositiveWeight { weight: 0.0 })
        );
        spec.weight = -1.0;
        assert!(matches!(
            spec.validate(SimTime::ZERO),
            Err(JobSpecError::NonPositiveWeight { .. })
        ));
        spec.weight = f64::NAN;
        assert!(matches!(
            spec.validate(SimTime::ZERO),
            Err(JobSpecError::NonPositiveWeight { .. })
        ));
        spec.weight = 2.5;
        assert_eq!(spec.validate(SimTime::ZERO), Ok(()));
    }

    #[test]
    fn validate_rejects_deadline_at_or_before_submission() {
        let spec = |deadline| JobSpec {
            name: "d".into(),
            input: JobInput::Synthetic { total_units: 1 },
            kernel: Arc::new(FixedCostKernel::default()),
            num_map_tasks: None,
            output: OutputSink::Discard,
            reduce: ReduceSpec::None,
            scheduler: None,
            tenant: "t".into(),
            weight: 1.0,
            deadline: Some(deadline),
        };
        let submit = SimTime::from_nanos(5_000_000_000);
        // Strictly before, and exactly at, the submission instant: both
        // born overdue.
        for late in [SimTime::from_nanos(1_000_000_000), submit] {
            assert_eq!(
                spec(late).validate(submit),
                Err(JobSpecError::DeadlineInPast {
                    deadline: late,
                    submit,
                })
            );
        }
        let future = SimTime::from_nanos(6_000_000_000);
        assert_eq!(spec(future).validate(submit), Ok(()));
        // The error message names both instants.
        let msg = spec(submit).validate(submit).unwrap_err().to_string();
        assert!(msg.contains("deadline_at"), "{msg}");
    }
}
