//! # accelmr — two-level MapReduce for accelerator-equipped clusters
//!
//! A full-system reproduction of *"Speeding Up Distributed MapReduce
//! Applications Using Hardware Accelerators"* (Becerra et al., ICPP 2009):
//! a Hadoop-like distributed MapReduce runtime whose map tasks offload
//! their kernels to simulated Cell BE accelerators through a JNI-like
//! native bridge, exploiting cluster-level and intra-node parallelism at
//! once.
//!
//! This facade crate re-exports every layer:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`des`] | `accelmr-des` | deterministic discrete-event engine |
//! | [`net`] | `accelmr-net` | links, switch, max-min fair flows, loopback |
//! | [`dfs`] | `accelmr-dfs` | HDFS-like NameNode/DataNodes |
//! | [`mapred`] | `accelmr-mapred` | JobTracker/TaskTrackers, splits, shuffle |
//! | [`cellbe`] | `accelmr-cellbe` | Cell BE machine (SPEs, local stores, DMA) |
//! | [`cellmr`] | `accelmr-cellmr` | MapReduce-for-Cell framework |
//! | [`kernels`] | `accelmr-kernels` | real AES-128 / Monte Carlo Pi / sort + cost model |
//! | [`hybrid`] | `accelmr-hybrid` | the paper's two-level runtime + experiments |
//!
//! ## Quickstart
//!
//! Deploy a cluster with [`ClusterBuilder`](prelude::ClusterBuilder), open a
//! [`Session`](prelude::Session), and submit jobs — hand-rolled or from the
//! [`presets`](hybrid::presets) for the paper's workloads:
//!
//! ```
//! use accelmr::prelude::*;
//!
//! // Deploy a 4-node cluster with Cell-equipped workers.
//! let mut cluster = ClusterBuilder::new()
//!     .seed(42)
//!     .workers(4)
//!     .env(CellEnvFactory::default())
//!     .deploy();
//!
//! // Estimate Pi with accelerated mappers.
//! let mut session = cluster.session();
//! let job = session.submit(presets::pi(PiMapper::Cell, 7, 10_000_000));
//! session.run_until_complete();
//!
//! let result = job.result();
//! assert!(result.succeeded);
//! let pi = presets::pi_estimate(&result).unwrap();
//! assert!((pi - std::f64::consts::PI).abs() < 0.01);
//! ```
//!
//! Sessions drive any number of jobs concurrently with deterministic
//! discrete-event interleaving — including staggered arrivals:
//!
//! ```
//! use accelmr::prelude::*;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .workers(4)
//!     .env(CellEnvFactory::default())
//!     .deploy();
//! let mut session = cluster.session();
//! let a = session.submit(presets::pi(PiMapper::Cell, 1, 50_000_000));
//! let b = session.submit(presets::pi(PiMapper::Java, 2, 50_000_000));
//! let late = session.submit_after(
//!     SimDuration::from_secs(30),
//!     presets::pi(PiMapper::Cell, 3, 50_000_000),
//! );
//! let results = session.run_until_complete();
//! assert_eq!(results.len(), 3);
//! assert!(a.result().succeeded && b.result().succeeded && late.result().succeeded);
//! ```
//!
//! The pre-0.1 `deploy_cluster(seed, n, ..7 positional args)` / `run_job`
//! helpers still compile but are deprecated in favor of the builders.

pub use accelmr_cellbe as cellbe;
pub use accelmr_cellmr as cellmr;
pub use accelmr_des as des;
pub use accelmr_dfs as dfs;
pub use accelmr_hybrid as hybrid;
pub use accelmr_kernels as kernels;
pub use accelmr_mapred as mapred;
pub use accelmr_net as net;

/// The most commonly used items across all layers.
pub mod prelude {
    pub use accelmr_des::{Sim, SimDuration, SimTime};
    pub use accelmr_dfs::{DfsConfig, DfsHandle};
    pub use accelmr_hybrid::presets;
    pub use accelmr_hybrid::{
        AesMapper, CellAesKernel, CellEnvFactory, CellMrAesKernel, CellPiKernel, EmptyKernel,
        JavaAesKernel, JavaPiKernel, PiMapper,
    };
    pub use accelmr_kernels::{Aes128, AesImpl, Engine};
    #[allow(deprecated)]
    pub use accelmr_mapred::{deploy_cluster, run_job};
    pub use accelmr_mapred::{
        ChurnOp, ChurnSchedule, ClusterBuilder, FaultOp, FaultPlan, JobBuilder, JobError,
        JobHandle, JobInput, JobRequest, JobResult, JobSpec, JobSpecError, MrConfig, OutputSink,
        PreemptionTuning, PreloadSpec, ReduceSpec, SchedulerPolicy, Session, SumReducer,
    };
    pub use accelmr_net::{NetConfig, NodeId};
}
