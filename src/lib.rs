//! # accelmr — two-level MapReduce for accelerator-equipped clusters
//!
//! A full-system reproduction of *"Speeding Up Distributed MapReduce
//! Applications Using Hardware Accelerators"* (Becerra et al., ICPP 2009):
//! a Hadoop-like distributed MapReduce runtime whose map tasks offload
//! their kernels to simulated Cell BE accelerators through a JNI-like
//! native bridge, exploiting cluster-level and intra-node parallelism at
//! once.
//!
//! This facade crate re-exports every layer:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`des`] | `accelmr-des` | deterministic discrete-event engine |
//! | [`net`] | `accelmr-net` | links, switch, max-min fair flows, loopback |
//! | [`dfs`] | `accelmr-dfs` | HDFS-like NameNode/DataNodes |
//! | [`mapred`] | `accelmr-mapred` | JobTracker/TaskTrackers, splits, shuffle |
//! | [`cellbe`] | `accelmr-cellbe` | Cell BE machine (SPEs, local stores, DMA) |
//! | [`cellmr`] | `accelmr-cellmr` | MapReduce-for-Cell framework |
//! | [`kernels`] | `accelmr-kernels` | real AES-128 / Monte Carlo Pi / sort + cost model |
//! | [`hybrid`] | `accelmr-hybrid` | the paper's two-level runtime + experiments |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use accelmr::prelude::*;
//!
//! // Deploy a 4-node cluster with Cell-equipped workers.
//! let env = CellEnvFactory::default();
//! let mut cluster = deploy_cluster(
//!     42, 4,
//!     NetConfig::default(), DfsConfig::default(), MrConfig::default(),
//!     &env, false,
//! );
//!
//! // Estimate Pi with accelerated mappers.
//! let spec = JobSpec {
//!     name: "pi".into(),
//!     input: JobInput::Synthetic { total_units: 10_000_000 },
//!     kernel: Arc::new(CellPiKernel::new(7)),
//!     num_map_tasks: None,
//!     output: OutputSink::Discard,
//!     reduce: ReduceSpec::RpcAggregate { reducer: Arc::new(SumReducer { cycles_per_byte: 1.0 }) },
//! };
//! let result = run_job(&mut cluster.sim, &cluster.mr, &cluster.dfs, vec![], spec);
//! assert!(result.succeeded);
//! let inside = result.kv.iter().find(|&&(k, _)| k == 0).unwrap().1;
//! let total = result.kv.iter().find(|&&(k, _)| k == 1).unwrap().1;
//! let pi = 4.0 * inside as f64 / total as f64;
//! assert!((pi - std::f64::consts::PI).abs() < 0.01);
//! ```

pub use accelmr_cellbe as cellbe;
pub use accelmr_cellmr as cellmr;
pub use accelmr_des as des;
pub use accelmr_dfs as dfs;
pub use accelmr_hybrid as hybrid;
pub use accelmr_kernels as kernels;
pub use accelmr_mapred as mapred;
pub use accelmr_net as net;

/// The most commonly used items across all layers.
pub mod prelude {
    pub use accelmr_des::{Sim, SimDuration, SimTime};
    pub use accelmr_dfs::{DfsConfig, DfsHandle};
    pub use accelmr_hybrid::{
        CellAesKernel, CellEnvFactory, CellMrAesKernel, CellPiKernel, EmptyKernel, JavaAesKernel,
        JavaPiKernel,
    };
    pub use accelmr_kernels::{Aes128, AesImpl, Engine};
    pub use accelmr_mapred::{
        deploy_cluster, run_job, JobInput, JobResult, JobSpec, MrConfig, OutputSink, PreloadSpec,
        ReduceSpec, SumReducer,
    };
    pub use accelmr_net::{NetConfig, NodeId};
}
