//! Cross-crate property tests: determinism of whole-cluster runs, AES
//! implementation equivalence, CTR split composition, flow-model
//! invariants, and the Cell estimator-vs-event-model agreement.
//!
//! Property cases are generated with the workspace's own deterministic
//! RNG (no external property-testing dependency): every run explores the
//! same fixed set of random cases, so failures reproduce exactly.

use accelmr::cellbe::{estimate, CellConfig, CellMachine, DataInput, IdentityKernel};
use accelmr::des::Xoshiro256;
use accelmr::kernels::aes::modes::{ctr_xor, ecb_decrypt, ecb_encrypt};
use accelmr::net::{max_min_rates, FlowDemand, LinkId, LinkTable};
use accelmr::prelude::*;

fn run_cluster_pi(seed: u64) -> (JobResult, u64) {
    let mut c = ClusterBuilder::new()
        .seed(seed)
        .workers(3)
        .env(CellEnvFactory::default())
        .deploy();
    c.sim.enable_trace(1 << 14);
    let mut session = c.session();
    session.submit(
        presets::pi(PiMapper::Cell, 99, 50_000_000)
            .name("det-pi")
            .map_tasks(6),
    );
    let r = session.run();
    let fp = c.sim.trace().fingerprint();
    (r, fp)
}

#[test]
fn whole_cluster_runs_are_deterministic() {
    let (r1, f1) = run_cluster_pi(5);
    let (r2, f2) = run_cluster_pi(5);
    assert_eq!(r1.elapsed, r2.elapsed);
    assert_eq!(r1.kv, r2.kv);
    assert_eq!(f1, f2);
}

#[test]
fn different_seeds_change_schedule_not_results() {
    // Heartbeat jitter differs, so traces differ — but the Pi result (pure
    // function of the job seed) and task structure are identical.
    let (r1, f1) = run_cluster_pi(5);
    let (r2, f2) = run_cluster_pi(6);
    assert_ne!(f1, f2);
    assert_eq!(r1.kv, r2.kv);
    assert_eq!(r1.map_tasks, r2.map_tasks);
}

fn random_key(rng: &mut Xoshiro256) -> [u8; 16] {
    let mut key = [0u8; 16];
    for b in &mut key {
        *b = rng.next_u64() as u8;
    }
    key
}

#[test]
fn aes_implementations_agree() {
    let mut rng = Xoshiro256::seed_from_u64(0xA15);
    for _ in 0..64 {
        let key = random_key(&mut rng);
        let blocks = rng.range_inclusive(1, 15) as usize;
        let seed = rng.next_u64();
        let aes = Aes128::new(&key);
        let mut data = vec![0u8; blocks * 16];
        accelmr::kernels::fill_deterministic(seed, 0, &mut data);
        let mut scalar = data.clone();
        let mut ttable = data.clone();
        let mut lanes = data.clone();
        ecb_encrypt(&aes, AesImpl::Scalar, &mut scalar);
        ecb_encrypt(&aes, AesImpl::TTable, &mut ttable);
        ecb_encrypt(&aes, AesImpl::Lanes4, &mut lanes);
        assert_eq!(scalar, ttable);
        assert_eq!(ttable, lanes);
        // And decryption inverts.
        ecb_decrypt(&aes, &mut scalar);
        assert_eq!(scalar, data);
    }
}

#[test]
fn ctr_split_composition() {
    // Splitting a CTR stream at any 16-byte boundary must compose to the
    // serial result — the property split-parallel encryption needs.
    let mut rng = Xoshiro256::seed_from_u64(0xC12);
    for _ in 0..64 {
        let key = random_key(&mut rng);
        let len = rng.range_inclusive(1, 511) as usize;
        let split = rng.next_below(512) as usize;
        let nonce = rng.next_u64();
        let aes = Aes128::new(&key);
        let split = (split % (len + 1) / 16) * 16;
        let mut data = vec![0u8; len];
        accelmr::kernels::fill_deterministic(1, 0, &mut data);
        let mut serial = data.clone();
        ctr_xor(&aes, AesImpl::TTable, nonce, 0, &mut serial);
        let (a, b) = data.split_at_mut(split);
        ctr_xor(&aes, AesImpl::Lanes4, nonce, 0, a);
        ctr_xor(&aes, AesImpl::Scalar, nonce, split as u64 / 16, b);
        assert_eq!(data, serial);
    }
}

#[test]
fn max_min_never_oversubscribes() {
    let mut rng = Xoshiro256::seed_from_u64(0xF10);
    for _ in 0..64 {
        let n_links = rng.range_inclusive(1, 5) as usize;
        let caps: Vec<f64> = (0..n_links).map(|_| 1.0 + rng.next_f64() * 999.0).collect();
        let n_flows = rng.next_below(12) as usize;
        let flows: Vec<(usize, usize, f64)> = (0..n_flows)
            .map(|_| {
                (
                    rng.next_below(6) as usize,
                    rng.next_below(6) as usize,
                    0.5 + rng.next_f64() * 499.5,
                )
            })
            .collect();

        let mut links = LinkTable::new();
        for &c in &caps {
            links.add(c);
        }
        let demands: Vec<FlowDemand> = flows
            .iter()
            .map(|&(a, b, cap)| {
                let mut ls = vec![LinkId(a % caps.len())];
                let l2 = LinkId(b % caps.len());
                if !ls.contains(&l2) {
                    ls.push(l2);
                }
                FlowDemand { links: ls, cap }
            })
            .collect();
        let rates = max_min_rates(&links, &demands);
        assert_eq!(rates.len(), demands.len());
        let mut used = vec![0.0f64; caps.len()];
        for (r, d) in rates.iter().zip(&demands) {
            assert!(*r >= 0.0);
            assert!(*r <= d.cap + 1e-6);
            for l in &d.links {
                used[l.0] += r;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c + 1e-3, "link oversubscribed: {u} > {c}");
        }
        // Work conservation: at least one flow gets a positive rate unless
        // there are no flows.
        if !demands.is_empty() {
            assert!(rates.iter().any(|&r| r > 0.0));
        }
    }
}

#[test]
fn cell_estimator_tracks_event_model() {
    let mut rng = Xoshiro256::seed_from_u64(0xCE11);
    for _ in 0..24 {
        let mb = rng.range_inclusive(1, 63);
        let cpb = 1.0 + rng.next_f64() * 299.0;
        let block_kb = rng.range_inclusive(1, 7) as usize;
        let cfg = CellConfig::default();
        let block = block_kb * 4096; // 4..32 KB, aligned
        let bytes = mb << 20;
        let mut m = CellMachine::new(cfg.clone(), false).unwrap();
        m.warm_up();
        let kernel = IdentityKernel::new(cpb);
        let detailed = m
            .run_data(DataInput::Virtual(bytes), &kernel, block)
            .unwrap();
        let body = (detailed.elapsed - detailed.startup).as_secs_f64();
        let est = estimate::data_run_body(&cfg, bytes, cpb, block).as_secs_f64();
        let rel = (est - body).abs() / body.max(1e-9);
        assert!(
            rel < 0.15,
            "estimate {est} vs detailed {body} (rel {rel:.3})"
        );
    }
}

#[test]
fn unordered_digest_is_permutation_invariant() {
    use accelmr::kernels::UnorderedDigest;
    let mut rng = Xoshiro256::seed_from_u64(0xD16);
    for _ in 0..64 {
        let n = rng.next_below(32) as usize;
        let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut shuffled = items.clone();
        rng.shuffle(&mut shuffled);
        let fold = |v: &[u64]| {
            let mut d = UnorderedDigest::new();
            for &x in v {
                d.add(x);
            }
            d.finish()
        };
        assert_eq!(fold(&items), fold(&shuffled));
    }
}
