//! Cross-crate property tests: determinism of whole-cluster runs, AES
//! implementation equivalence, CTR split composition, flow-model
//! invariants, and the Cell estimator-vs-event-model agreement.

use std::sync::Arc;

use accelmr::cellbe::{estimate, CellConfig, CellMachine, DataInput, IdentityKernel};
use accelmr::kernels::aes::modes::{ctr_xor, ecb_decrypt, ecb_encrypt};
use accelmr::net::{max_min_rates, FlowDemand, LinkId, LinkTable};
use accelmr::prelude::*;
use proptest::prelude::*;

fn pi_spec(seed: u64) -> JobSpec {
    JobSpec {
        name: "det-pi".into(),
        input: JobInput::Synthetic {
            total_units: 50_000_000,
        },
        kernel: Arc::new(CellPiKernel::new(seed)),
        num_map_tasks: Some(6),
        output: OutputSink::Discard,
        reduce: ReduceSpec::RpcAggregate {
            reducer: Arc::new(SumReducer { cycles_per_byte: 1.0 }),
        },
    }
}

fn run_cluster_pi(seed: u64) -> (JobResult, u64) {
    let env = CellEnvFactory::default();
    let mut c = deploy_cluster(
        seed,
        3,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        false,
    );
    c.sim.enable_trace(1 << 14);
    let r = run_job(&mut c.sim, &c.mr, &c.dfs, vec![], pi_spec(99));
    let fp = c.sim.trace().fingerprint();
    (r, fp)
}

#[test]
fn whole_cluster_runs_are_deterministic() {
    let (r1, f1) = run_cluster_pi(5);
    let (r2, f2) = run_cluster_pi(5);
    assert_eq!(r1.elapsed, r2.elapsed);
    assert_eq!(r1.kv, r2.kv);
    assert_eq!(f1, f2);
}

#[test]
fn different_seeds_change_schedule_not_results() {
    // Heartbeat jitter differs, so traces differ — but the Pi result (pure
    // function of the job seed) and task structure are identical.
    let (r1, f1) = run_cluster_pi(5);
    let (r2, f2) = run_cluster_pi(6);
    assert_ne!(f1, f2);
    assert_eq!(r1.kv, r2.kv);
    assert_eq!(r1.map_tasks, r2.map_tasks);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aes_implementations_agree(key in prop::array::uniform16(any::<u8>()),
                                 blocks in 1usize..16,
                                 seed in any::<u64>()) {
        let aes = Aes128::new(&key);
        let mut data = vec![0u8; blocks * 16];
        accelmr::kernels::fill_deterministic(seed, 0, &mut data);
        let mut scalar = data.clone();
        let mut ttable = data.clone();
        let mut lanes = data.clone();
        ecb_encrypt(&aes, AesImpl::Scalar, &mut scalar);
        ecb_encrypt(&aes, AesImpl::TTable, &mut ttable);
        ecb_encrypt(&aes, AesImpl::Lanes4, &mut lanes);
        prop_assert_eq!(&scalar, &ttable);
        prop_assert_eq!(&ttable, &lanes);
        // And decryption inverts.
        ecb_decrypt(&aes, &mut scalar);
        prop_assert_eq!(scalar, data);
    }

    #[test]
    fn ctr_split_composition(key in prop::array::uniform16(any::<u8>()),
                             len in 1usize..512,
                             split in 0usize..512,
                             nonce in any::<u64>()) {
        // Splitting a CTR stream at any 16-byte boundary must compose to
        // the serial result — the property split-parallel encryption needs.
        let aes = Aes128::new(&key);
        let split = (split % (len + 1) / 16) * 16;
        let mut data = vec![0u8; len];
        accelmr::kernels::fill_deterministic(1, 0, &mut data);
        let mut serial = data.clone();
        ctr_xor(&aes, AesImpl::TTable, nonce, 0, &mut serial);
        let (a, b) = data.split_at_mut(split);
        ctr_xor(&aes, AesImpl::Lanes4, nonce, 0, a);
        ctr_xor(&aes, AesImpl::Scalar, nonce, split as u64 / 16, b);
        prop_assert_eq!(data, serial);
    }

    #[test]
    fn max_min_never_oversubscribes(caps in prop::collection::vec(1.0f64..1000.0, 1..6),
                                    flows in prop::collection::vec((0usize..6, 0usize..6, 0.5f64..500.0), 0..12)) {
        let mut links = LinkTable::new();
        for &c in &caps { links.add(c); }
        let demands: Vec<FlowDemand> = flows.iter().map(|&(a, b, cap)| {
            let mut ls = vec![LinkId(a % caps.len())];
            let l2 = LinkId(b % caps.len());
            if !ls.contains(&l2) { ls.push(l2); }
            FlowDemand { links: ls, cap }
        }).collect();
        let rates = max_min_rates(&links, &demands);
        prop_assert_eq!(rates.len(), demands.len());
        let mut used = vec![0.0f64; caps.len()];
        for (r, d) in rates.iter().zip(&demands) {
            prop_assert!(*r >= 0.0);
            prop_assert!(*r <= d.cap + 1e-6);
            for l in &d.links { used[l.0] += r; }
        }
        for (u, c) in used.iter().zip(&caps) {
            prop_assert!(*u <= c + 1e-3, "link oversubscribed: {} > {}", u, c);
        }
        // Work conservation: at least one flow is bottlenecked (at cap or
        // on a saturated link) unless there are no flows.
        if !demands.is_empty() {
            let any_positive = rates.iter().any(|&r| r > 0.0);
            prop_assert!(any_positive);
        }
    }

    #[test]
    fn cell_estimator_tracks_event_model(mb in 1u64..64,
                                         cpb in 1.0f64..300.0,
                                         block_kb in 1usize..8) {
        let cfg = CellConfig::default();
        let block = block_kb * 4096; // 4..32 KB, aligned
        let bytes = mb << 20;
        let mut m = CellMachine::new(cfg.clone(), false).unwrap();
        m.warm_up();
        let kernel = IdentityKernel::new(cpb);
        let detailed = m.run_data(DataInput::Virtual(bytes), &kernel, block).unwrap();
        let body = (detailed.elapsed - detailed.startup).as_secs_f64();
        let est = estimate::data_run_body(&cfg, bytes, cpb, block).as_secs_f64();
        let rel = (est - body).abs() / body.max(1e-9);
        prop_assert!(rel < 0.15, "estimate {est} vs detailed {body} (rel {rel:.3})");
    }

    #[test]
    fn unordered_digest_is_permutation_invariant(items in prop::collection::vec(any::<u64>(), 0..32),
                                                 seed in any::<u64>()) {
        use accelmr::kernels::UnorderedDigest;
        let mut shuffled = items.clone();
        let mut rng = accelmr::des::Xoshiro256::seed_from_u64(seed);
        rng.shuffle(&mut shuffled);
        let fold = |v: &[u64]| {
            let mut d = UnorderedDigest::new();
            for &x in v { d.add(x); }
            d.finish()
        };
        prop_assert_eq!(fold(&items), fold(&shuffled));
    }
}
