//! The paper's accuracy claim: the Pi estimator's error is O(1/sqrt(N))
//! ("estimating Pi with 100,000,000 samples produces an actual accuracy of
//! approximately 4 digits"). Verified through the full distributed stack,
//! across both mapper engines and across the exact-sampling and
//! binomial-approximation regimes.

use accelmr::hybrid::experiments::dist::{run_pi_job, PiMapper};
use accelmr::kernels::pi::standard_error;
use accelmr::prelude::*;

#[test]
fn error_envelope_shrinks_with_n() {
    let mr = MrConfig::default();
    let mut last_bound = f64::INFINITY;
    for (i, n) in [1_000_000u64, 100_000_000, 10_000_000_000]
        .iter()
        .enumerate()
    {
        let (result, pi) = run_pi_job(100 + i as u64, 2, *n, PiMapper::Cell, &mr);
        assert!(result.succeeded);
        let err = (pi - std::f64::consts::PI).abs();
        let bound = 5.0 * standard_error(*n);
        assert!(err < bound, "n={n}: err {err:.2e} vs bound {bound:.2e}");
        assert!(bound < last_bound);
        last_bound = bound;
    }
}

#[test]
fn four_digits_at_hundred_million_samples() {
    let mr = MrConfig::default();
    let (result, pi) = run_pi_job(200, 4, 100_000_000, PiMapper::Java, &mr);
    assert!(result.succeeded);
    // "approximately 4 digits": within a few parts in 1e4.
    let err = (pi - std::f64::consts::PI).abs();
    assert!(err < 1.0e-3, "err {err}");
}

#[test]
fn engines_give_statistically_consistent_estimates() {
    let mr = MrConfig::default();
    let n = 50_000_000u64;
    let (_, pi_java) = run_pi_job(300, 2, n, PiMapper::Java, &mr);
    let (_, pi_cell) = run_pi_job(301, 2, n, PiMapper::Cell, &mr);
    let bound = 10.0 * standard_error(n);
    assert!((pi_java - pi_cell).abs() < bound, "{pi_java} vs {pi_cell}");
}

#[test]
fn estimate_is_deterministic_per_seed() {
    let mr = MrConfig::default();
    let (_, a) = run_pi_job(400, 2, 10_000_000, PiMapper::Cell, &mr);
    let (_, b) = run_pi_job(400, 2, 10_000_000, PiMapper::Cell, &mr);
    assert_eq!(a, b);
}
