//! End-to-end functional verification: ciphertext produced through the
//! *entire* simulated stack — HDFS blocks → record feed over the loopback →
//! JNI bridge → SPE local stores and DMA → map output — must equal a
//! locally computed serial AES-CTR reference, for every mapper engine.

use std::sync::Arc;

use accelmr::hybrid::{job_key, JOB_NONCE};
use accelmr::kernels::aes::modes::ctr_xor;
use accelmr::kernels::{checksum, fill_deterministic, UnorderedDigest};
use accelmr::mapred::CrashTaskTracker;
use accelmr::prelude::*;

const MB: u64 = 1 << 20;
const FILE_LEN: u64 = 24 * MB;
const RECORD: u64 = 2 * MB;
const SEED: u64 = 1234;

/// Serial reference digest: encrypt `file_len` bytes on one core, digest
/// each record's ciphertext.
fn reference_digest_for(file_len: u64) -> (u64, u64) {
    let key = job_key();
    let mut digest = UnorderedDigest::new();
    for r in 0..(file_len / RECORD) {
        let mut buf = vec![0u8; RECORD as usize];
        fill_deterministic(SEED, r * RECORD, &mut buf);
        ctr_xor(&key, AesImpl::TTable, JOB_NONCE, r * RECORD / 16, &mut buf);
        digest.add(checksum(&buf));
    }
    digest.finish()
}

fn reference_digest() -> (u64, u64) {
    reference_digest_for(FILE_LEN)
}

fn materialized_cluster(seed: u64) -> accelmr::mapred::MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(3)
        .env(CellEnvFactory {
            materialized: true,
            ..CellEnvFactory::default()
        })
        .materialized(true)
        .deploy()
}

fn encrypt_job(kernel: Arc<dyn accelmr::mapred::TaskKernel>, len: u64) -> JobBuilder {
    JobBuilder::new("e2e-encrypt")
        .input_file("/plain")
        .record_bytes(RECORD)
        .kernel_arc(kernel)
        .map_tasks(6)
        .digest_output()
        .preload(
            PreloadSpec::new("/plain", len, SEED)
                .block_size(4 * MB)
                .replication(2),
        )
}

fn run_encryption(kernel: Arc<dyn accelmr::mapred::TaskKernel>, seed: u64) -> JobResult {
    let mut cluster = materialized_cluster(seed);
    let mut session = cluster.session();
    session.submit(encrypt_job(kernel, FILE_LEN));
    session.run()
}

#[test]
fn java_mapper_ciphertext_matches_serial_reference() {
    let result = run_encryption(Arc::new(JavaAesKernel::new()), 1);
    assert!(result.succeeded);
    assert_eq!(result.digest, reference_digest());
}

#[test]
fn cell_mapper_ciphertext_matches_serial_reference() {
    let result = run_encryption(Arc::new(CellAesKernel::new()), 2);
    assert!(result.succeeded);
    assert_eq!(result.digest, reference_digest());
}

#[test]
fn cellmr_mapper_ciphertext_matches_serial_reference() {
    let result = run_encryption(Arc::new(CellMrAesKernel::new()), 3);
    assert!(result.succeeded);
    assert_eq!(result.digest, reference_digest());
}

#[test]
fn all_engines_agree_with_each_other() {
    let a = run_encryption(Arc::new(JavaAesKernel::new()), 4);
    let b = run_encryption(Arc::new(CellAesKernel::new()), 5);
    let c = run_encryption(Arc::new(CellMrAesKernel::new()), 6);
    assert_eq!(a.digest, b.digest);
    assert_eq!(b.digest, c.digest);
    // ...while their simulated times differ (different engines).
    assert_ne!(a.elapsed, b.elapsed);
}

#[test]
fn crash_during_job_preserves_exactly_once_output() {
    // Larger file so tasks (4 records x ~1.2 s feed each) are guaranteed to
    // straddle the crash instant: work begins no later than
    // init(8) + heartbeat(3) + task start(1.8) = 12.8 s and each task needs
    // >4 s more, so a crash at t=14 s always hits node 1 mid-task.
    let crash_len = 48 * MB;
    let mut cluster = materialized_cluster(7);
    let victim = cluster.mr.tasktracker_on(NodeId(1)).unwrap();
    let mut session = cluster.session();
    session.sim_mut().post_after(
        victim,
        Box::new(CrashTaskTracker),
        SimDuration::from_secs(14),
    );
    session.submit(encrypt_job(Arc::new(JavaAesKernel::new()), crash_len).name("e2e-crash"));
    let result = session.run();
    assert!(result.succeeded);
    assert!(
        result.attempts > result.map_tasks,
        "no re-execution happened"
    );
    assert_eq!(result.digest, reference_digest_for(crash_len));
}
