//! End-to-end functional verification: ciphertext produced through the
//! *entire* simulated stack — HDFS blocks → record feed over the loopback →
//! JNI bridge → SPE local stores and DMA → map output — must equal a
//! locally computed serial AES-CTR reference, for every mapper engine.

use std::sync::Arc;

use accelmr::hybrid::{job_key, JOB_NONCE};
use accelmr::kernels::aes::modes::ctr_xor;
use accelmr::kernels::{checksum, fill_deterministic, UnorderedDigest};
use accelmr::mapred::CrashTaskTracker;
use accelmr::prelude::*;

const MB: u64 = 1 << 20;
const FILE_LEN: u64 = 24 * MB;
const RECORD: u64 = 2 * MB;
const SEED: u64 = 1234;

/// Serial reference digest: encrypt `file_len` bytes on one core, digest
/// each record's ciphertext.
fn reference_digest_for(file_len: u64) -> (u64, u64) {
    let key = job_key();
    let mut digest = UnorderedDigest::new();
    for r in 0..(file_len / RECORD) {
        let mut buf = vec![0u8; RECORD as usize];
        fill_deterministic(SEED, r * RECORD, &mut buf);
        ctr_xor(&key, AesImpl::TTable, JOB_NONCE, r * RECORD / 16, &mut buf);
        digest.add(checksum(&buf));
    }
    digest.finish()
}

fn reference_digest() -> (u64, u64) {
    reference_digest_for(FILE_LEN)
}

fn run_encryption(kernel: Arc<dyn accelmr::mapred::TaskKernel>, seed: u64) -> JobResult {
    let env = CellEnvFactory {
        materialized: true,
        ..CellEnvFactory::default()
    };
    let mut cluster = deploy_cluster(
        seed,
        3,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        true,
    );
    let preload = PreloadSpec {
        path: "/plain".into(),
        len: FILE_LEN,
        block_size: Some(4 * MB),
        replication: Some(2),
        seed: SEED,
    };
    let spec = JobSpec {
        name: "e2e-encrypt".into(),
        input: JobInput::File {
            path: "/plain".into(),
            record_bytes: Some(RECORD),
        },
        kernel,
        num_map_tasks: Some(6),
        output: OutputSink::Digest,
        reduce: ReduceSpec::None,
    };
    run_job(&mut cluster.sim, &cluster.mr, &cluster.dfs, vec![preload], spec)
}

#[test]
fn java_mapper_ciphertext_matches_serial_reference() {
    let result = run_encryption(Arc::new(JavaAesKernel::new()), 1);
    assert!(result.succeeded);
    assert_eq!(result.digest, reference_digest());
}

#[test]
fn cell_mapper_ciphertext_matches_serial_reference() {
    let result = run_encryption(Arc::new(CellAesKernel::new()), 2);
    assert!(result.succeeded);
    assert_eq!(result.digest, reference_digest());
}

#[test]
fn cellmr_mapper_ciphertext_matches_serial_reference() {
    let result = run_encryption(Arc::new(CellMrAesKernel::new()), 3);
    assert!(result.succeeded);
    assert_eq!(result.digest, reference_digest());
}

#[test]
fn all_engines_agree_with_each_other() {
    let a = run_encryption(Arc::new(JavaAesKernel::new()), 4);
    let b = run_encryption(Arc::new(CellAesKernel::new()), 5);
    let c = run_encryption(Arc::new(CellMrAesKernel::new()), 6);
    assert_eq!(a.digest, b.digest);
    assert_eq!(b.digest, c.digest);
    // ...while their simulated times differ (different engines).
    assert_ne!(a.elapsed, b.elapsed);
}

#[test]
fn crash_during_job_preserves_exactly_once_output() {
    // Larger file so tasks (4 records x ~1.2 s feed each) are guaranteed to
    // straddle the crash instant: work begins no later than
    // init(8) + heartbeat(3) + task start(1.8) = 12.8 s and each task needs
    // >4 s more, so a crash at t=14 s always hits node 1 mid-task.
    let crash_len = 48 * MB;
    let env = CellEnvFactory {
        materialized: true,
        ..CellEnvFactory::default()
    };
    let mut cluster = deploy_cluster(
        7,
        3,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        true,
    );
    let preload = PreloadSpec {
        path: "/plain".into(),
        len: crash_len,
        block_size: Some(4 * MB),
        replication: Some(2),
        seed: SEED,
    };
    let spec = JobSpec {
        name: "e2e-crash".into(),
        input: JobInput::File {
            path: "/plain".into(),
            record_bytes: Some(RECORD),
        },
        kernel: Arc::new(JavaAesKernel::new()),
        num_map_tasks: Some(6),
        output: OutputSink::Digest,
        reduce: ReduceSpec::None,
    };
    let victim = cluster.mr.tasktracker_on(NodeId(1)).unwrap();
    cluster
        .sim
        .post_after(victim, Box::new(CrashTaskTracker), SimDuration::from_secs(14));
    let result = run_job(&mut cluster.sim, &cluster.mr, &cluster.dfs, vec![preload], spec);
    assert!(result.succeeded);
    assert!(result.attempts > result.map_tasks, "no re-execution happened");
    assert_eq!(result.digest, reference_digest_for(crash_len));
}
