//! Preemptive slot reclamation, end to end: kill-and-requeue closes the
//! deadline gap a saturated cluster otherwise forces, fair-share reclaims
//! for an under-share tenant, billing stays conservative (slot-second
//! transfer, wasted-work surfaced), and outputs stay byte-identical to
//! non-preemptive runs of the same workload — exactly-once survives kills.

use accelmr::mapred::{FixedCostKernel, MrCluster, MrConfig, SchedulerPolicy, SumReducer};
use accelmr::prelude::*;

/// A synthetic job shaped for slot accounting: `tasks` map tasks of
/// `task_secs` seconds each (FixedCostKernel at 100 ns/unit).
fn slot_job(name: &str, tenant: &str, tasks: usize, task_secs: u64) -> JobBuilder {
    let units_per_task = task_secs * 10_000_000; // 100 ns/unit → secs
    JobBuilder::new(name)
        .synthetic(units_per_task * tasks as u64)
        .map_tasks(tasks)
        .kernel(FixedCostKernel::default())
        .tenant(tenant)
        .rpc_aggregate(SumReducer {
            cycles_per_byte: 1.0,
        })
}

fn cluster(workers: usize, seed: u64, mr: MrConfig) -> MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(workers)
        .mr(mr)
        .deploy()
}

/// Integral of a job's occupied slots over `[from, to]`, in slot-seconds,
/// reconstructed from its share timeline.
fn share_integral(r: &JobResult, from: SimTime, to: SimTime) -> f64 {
    let mut total = 0.0;
    let mut level = 0u32;
    let mut at = SimTime::ZERO;
    for &(t, next) in &r.share_timeline {
        let lo = at.max(from);
        let hi = t.min(to);
        if hi > lo {
            total += level as f64 * (hi - lo).as_secs_f64();
        }
        level = next;
        at = t;
    }
    let lo = at.max(from);
    if to > lo {
        total += level as f64 * (to - lo).as_secs_f64();
    }
    total
}

/// Whole-run share integral — equals the billed occupancy absent
/// transfer. The timeline is in absolute sim time (jobs submit late), so
/// integrate to a horizon past any job's completion; the level is back to
/// zero by then.
fn full_integral(r: &JobResult) -> f64 {
    share_integral(
        r,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_secs(1_000_000),
    )
}

/// First instant the job holds any slot, from its share timeline.
fn first_share_at(r: &JobResult) -> SimTime {
    r.share_timeline
        .iter()
        .find(|&&(_, level)| level > 0)
        .map(|&(t, _)| t)
        .expect("job never held a slot")
}

/// The tentpole scenario: eight 120 s bulk tasks saturate all 8 slots of
/// a 4-worker cluster; an urgent 4-task deadline job arrives at t=30 s
/// with an 80 s deadline. Without preemption the first slot frees around
/// t=130 s and the deadline is lost. With a kill budget, `DeadlineSlack`
/// reclaims slots once the urgent job's slack falls under the margin and
/// the deadline is met — with byte-identical job outputs either way.
#[test]
fn deadline_preemption_closes_the_gap() {
    let run = |preemption: PreemptionTuning| -> (JobResult, JobResult, u64) {
        let mut c = cluster(
            4,
            301,
            MrConfig {
                scheduler: SchedulerPolicy::DeadlineSlack,
                preemption,
                ..MrConfig::default()
            },
        );
        let mut session = c.session();
        let bulk = session.submit(slot_job("bulk", "batch", 8, 120));
        let urgent = session.submit_after(
            SimDuration::from_secs(30),
            slot_job("urgent", "interactive", 4, 4)
                .deadline_at(SimTime::ZERO + SimDuration::from_secs(80)),
        );
        let results = session.run_until_complete();
        assert!(results.iter().all(|r| r.succeeded));
        let out = (bulk.result(), urgent.result());
        drop(session);
        (out.0, out.1, c.sim.stats().counter("mr.preemptions"))
    };

    // Control: preemption disabled (the default config).
    let (bulk_ctl, urgent_ctl, kills_ctl) = run(PreemptionTuning::default());
    assert_eq!(kills_ctl, 0);
    assert_eq!(bulk_ctl.preempted_attempts, 0);
    assert_eq!(urgent_ctl.wasted_slot_seconds, 0.0);
    assert_eq!(
        urgent_ctl.deadline_met,
        Some(false),
        "control unexpectedly met the deadline — the cluster is not saturated"
    );
    // The urgent job waits out a full bulk task length for its first slot.
    assert!(
        first_share_at(&urgent_ctl) > SimTime::ZERO + SimDuration::from_secs(100),
        "control dispatched urgent at {}",
        first_share_at(&urgent_ctl)
    );

    // Preemption on: generous margin so the reclaim fires on the first
    // saturated heartbeat after the urgent job initializes.
    let tuning = PreemptionTuning {
        max_kills_per_job: 8,
        min_attempt_age: SimDuration::from_secs(5),
        cooldown: SimDuration::from_secs(5),
        slack_margin: SimDuration::from_secs(60),
    };
    let (bulk_pre, urgent_pre, kills) = run(tuning);
    assert_eq!(
        urgent_pre.deadline_met,
        Some(true),
        "preemption failed to close the deadline gap"
    );
    // Kill-and-requeue happened, within budget (one victim job).
    assert!(kills >= 1, "no preemptions recorded");
    assert!(kills <= tuning.max_kills_per_job as u64);
    assert_eq!(bulk_pre.preempted_attempts as u64, kills);
    assert_eq!(urgent_pre.preempted_attempts, 0);
    // The killing tenant is billed for the discarded runtime.
    assert!(urgent_pre.wasted_slot_seconds > 0.0);
    assert_eq!(bulk_pre.wasted_slot_seconds, 0.0);
    // The slot arrives within one heartbeat of the kill: submit 30 s +
    // 8 s job init + first saturated heartbeat (≤3 s) + the victim
    // tracker's next heartbeat (≤3 s) + dispatch overhead.
    assert!(
        first_share_at(&urgent_pre) < SimTime::ZERO + SimDuration::from_secs(55),
        "urgent first dispatched only at {}",
        first_share_at(&urgent_pre)
    );
    // Exactly-once under kills: outputs byte-identical to the
    // non-preemptive run of the same workload.
    assert_eq!(urgent_pre.kv, urgent_ctl.kv);
    assert_eq!(bulk_pre.kv, bulk_ctl.kv);
    assert_eq!(urgent_pre.digest, urgent_ctl.digest);
    assert_eq!(bulk_pre.digest, bulk_ctl.digest);
}

/// FairShare reclaims for a tenant sitting below its weighted share: a
/// greedy tenant's long maps hold every slot when an equal-weight tenant
/// arrives; the reclaim kills youngest greedy attempts and the accounting
/// stays conservative — the beneficiary is billed the transferred
/// slot-seconds (surfaced as `wasted_slot_seconds`) and the cluster-wide
/// sum of `slot_seconds` still equals the sum of share-timeline integrals.
#[test]
fn fair_share_reclaims_for_under_share_tenant() {
    let run = |preemption: PreemptionTuning| -> (JobResult, JobResult, u64) {
        let mut c = cluster(
            4,
            302,
            MrConfig {
                scheduler: SchedulerPolicy::FairShare,
                preemption,
                ..MrConfig::default()
            },
        );
        let mut session = c.session();
        let greedy = session.submit(slot_job("greedy", "batch", 8, 100));
        let nimble = session.submit_after(
            SimDuration::from_secs(30),
            slot_job("nimble", "interactive", 8, 5),
        );
        let results = session.run_until_complete();
        assert!(results.iter().all(|r| r.succeeded));
        let out = (greedy.result(), nimble.result());
        drop(session);
        (out.0, out.1, c.sim.stats().counter("mr.preemptions"))
    };

    let (greedy_ctl, nimble_ctl, kills_ctl) = run(PreemptionTuning::default());
    assert_eq!(kills_ctl, 0);
    // Without a kill budget the under-share tenant waits ~a full greedy
    // task length.
    assert!(first_share_at(&nimble_ctl) > SimTime::ZERO + SimDuration::from_secs(90));

    let tuning = PreemptionTuning {
        max_kills_per_job: 8,
        min_attempt_age: SimDuration::from_secs(5),
        cooldown: SimDuration::from_secs(5),
        slack_margin: SimDuration::from_secs(30),
    };
    let (greedy_pre, nimble_pre, kills) = run(tuning);
    assert!(kills >= 1, "fair-share never reclaimed");
    assert!(kills <= tuning.max_kills_per_job as u64);
    assert_eq!(greedy_pre.preempted_attempts as u64, kills);
    // The under-share tenant gets slots within heartbeats, not task
    // lengths.
    assert!(
        first_share_at(&nimble_pre) < SimTime::ZERO + SimDuration::from_secs(55),
        "nimble first dispatched only at {}",
        first_share_at(&nimble_pre)
    );
    // Billing identities. The beneficiary's slot_seconds exceed its own
    // timeline integral by exactly the transferred (wasted) runtime; the
    // victim's fall short by the same amount; the cluster-wide totals
    // balance to the last microsecond.
    let ig = full_integral(&greedy_pre);
    let inb = full_integral(&nimble_pre);
    assert!(nimble_pre.wasted_slot_seconds > 0.0);
    assert!(
        (nimble_pre.slot_seconds - inb - nimble_pre.wasted_slot_seconds).abs() < 1e-6,
        "beneficiary billing drifted: slot_seconds {} vs integral {inb} + wasted {}",
        nimble_pre.slot_seconds,
        nimble_pre.wasted_slot_seconds
    );
    assert!(
        ((greedy_pre.slot_seconds + nimble_pre.slot_seconds) - (ig + inb)).abs() < 1e-6,
        "slot-second transfer is not conservative"
    );
    // Outputs identical with and without reclamation.
    assert_eq!(greedy_pre.kv, greedy_ctl.kv);
    assert_eq!(nimble_pre.kv, nimble_ctl.kv);
}

/// Same-instant exactness regression: with speculation *and* an
/// aggressive kill budget, completions, speculative duplicates, and
/// preemption kills race within single heartbeats. The accounting must
/// stay exact anyway — every job's output matches the non-preemptive
/// control byte for byte, and the cluster-wide slot-second ledger
/// balances against the share timelines.
#[test]
fn speculation_and_preemption_keep_accounting_exact() {
    let run = |preemption: PreemptionTuning| -> (Vec<JobResult>, u64) {
        let mut c = cluster(
            4,
            303,
            MrConfig {
                scheduler: SchedulerPolicy::FairShare,
                speculative: true,
                preemption,
                ..MrConfig::default()
            },
        );
        let mut session = c.session();
        session.submit(slot_job("heavy", "batch", 8, 60));
        session.submit_after(
            SimDuration::from_secs(20),
            slot_job("mid", "interactive", 6, 10),
        );
        session.submit_after(SimDuration::from_secs(40), slot_job("late", "adhoc", 6, 5));
        let results = session.run_until_complete();
        assert!(results.iter().all(|r| r.succeeded));
        drop(session);
        let kills = c.sim.stats().counter("mr.preemptions");
        (results, kills)
    };

    let (ctl, kills_ctl) = run(PreemptionTuning::default());
    assert_eq!(kills_ctl, 0);
    let tuning = PreemptionTuning {
        max_kills_per_job: 6,
        min_attempt_age: SimDuration::from_secs(3),
        cooldown: SimDuration::from_secs(2),
        slack_margin: SimDuration::from_secs(30),
    };
    let (pre, kills) = run(tuning);
    assert!(kills >= 1, "aggressive budget never fired");
    // Every kill is attributed to exactly one victim job.
    let preempted: u64 = pre.iter().map(|r| r.preempted_attempts as u64).sum();
    assert_eq!(preempted, kills);
    // Exactly-once outputs, job by job.
    for (p, c) in pre.iter().zip(&ctl) {
        assert_eq!(p.name, c.name);
        assert_eq!(p.kv, c.kv, "kv drifted under preemption for {}", p.name);
        assert_eq!(p.digest, c.digest);
    }
    // Cluster-wide ledger: Σ slot_seconds == Σ timeline integrals — the
    // transfer at each kill instant nets to zero even when a kill lands
    // on the same heartbeat as completions and speculative starts.
    let billed: f64 = pre.iter().map(|r| r.slot_seconds).sum();
    let integrated: f64 = pre.iter().map(full_integral).sum();
    assert!(
        (billed - integrated).abs() < 1e-6,
        "ledger imbalance: billed {billed} vs integrated {integrated}"
    );
    let wasted: f64 = pre.iter().map(|r| r.wasted_slot_seconds).sum();
    assert!(wasted > 0.0);
}
