//! Multi-tenant fairness and deadline scheduling, end to end: weighted
//! share splits, head-of-line-blocking immunity, deadline hits FIFO
//! misses, and digest identity across every job-level policy.

use accelmr::mapred::{FixedCostKernel, SchedulerPolicy, SumReducer};
use accelmr::prelude::*;

const MB: u64 = 1 << 20;

/// A synthetic job shaped for slot accounting: `tasks` map tasks of
/// `task_secs` seconds each (FixedCostKernel at 100 ns/unit).
fn slot_job(name: &str, tenant: &str, tasks: usize, task_secs: u64) -> JobBuilder {
    let units_per_task = task_secs * 10_000_000; // 100 ns/unit → secs
    JobBuilder::new(name)
        .synthetic(units_per_task * tasks as u64)
        .map_tasks(tasks)
        .kernel(FixedCostKernel::default())
        .tenant(tenant)
        .rpc_aggregate(SumReducer {
            cycles_per_byte: 1.0,
        })
}

fn cluster(workers: usize, seed: u64, policy: SchedulerPolicy) -> accelmr::mapred::MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(workers)
        .scheduler(policy)
        .deploy()
}

/// Integral of a job's occupied slots over `[from, to]`, in slot-seconds,
/// reconstructed from its share timeline.
fn share_integral(r: &JobResult, from: SimTime, to: SimTime) -> f64 {
    let mut total = 0.0;
    let mut level = 0u32;
    let mut at = SimTime::ZERO;
    for &(t, next) in &r.share_timeline {
        let lo = at.max(from);
        let hi = t.min(to);
        if hi > lo {
            total += level as f64 * (hi - lo).as_secs_f64();
        }
        level = next;
        at = t;
    }
    let lo = at.max(from);
    if to > lo {
        total += level as f64 * (to - lo).as_secs_f64();
    }
    total
}

/// Three tenants with weights 1:2:3 run identical concurrent batches: the
/// occupied-slot integrals over the window where all three are busy land
/// on the weight proportions, and `slot_seconds` accounts each job's full
/// occupancy.
#[test]
fn three_tenant_batch_reaches_weighted_share_split() {
    let mut c = cluster(6, 201, SchedulerPolicy::FairShare);
    let mut session = c.session();
    let a = session.submit(slot_job("a", "tenant-a", 60, 6).weight(1.0));
    let b = session.submit(slot_job("b", "tenant-b", 60, 6).weight(2.0));
    let cc = session.submit(slot_job("c", "tenant-c", 60, 6).weight(3.0));
    let results = session.run_until_complete();
    assert!(results.iter().all(|r| r.succeeded));
    for r in &results {
        assert_eq!(r.scheduler, "fair-share");
        // The timeline integral over the whole run equals slot_seconds.
        let full = share_integral(r, SimTime::ZERO, SimTime::ZERO + r.elapsed);
        assert!(
            (full - r.slot_seconds).abs() < 1e-6,
            "timeline integral {full} vs slot_seconds {}",
            r.slot_seconds
        );
        assert!(r.deadline_met.is_none());
    }
    // Window where all tenants are busy: ramp-up to the earliest
    // completion (all submitted at t=0).
    let busy_until = results.iter().map(|r| r.elapsed).min().unwrap();
    let from = SimTime::ZERO + SimDuration::from_secs(20);
    let to = SimTime::ZERO + busy_until;
    assert!(to > from, "window collapsed: {busy_until}");
    let ia = share_integral(&a.result(), from, to);
    let ib = share_integral(&b.result(), from, to);
    let ic = share_integral(&cc.result(), from, to);
    let rel = |got: f64, want: f64| (got - want).abs() / want;
    assert!(
        rel(ib / ia, 2.0) < 0.3,
        "b/a share ratio {:.2}, want ~2 (a={ia:.0}, b={ib:.0}, c={ic:.0})",
        ib / ia
    );
    assert!(
        rel(ic / ia, 3.0) < 0.3,
        "c/a share ratio {:.2}, want ~3 (a={ia:.0}, b={ib:.0}, c={ic:.0})",
        ic / ia
    );
    // Tenant metadata round-trips.
    assert_eq!(a.result().tenant, "tenant-a");
    assert_eq!(cc.result().weight, 3.0);
}

/// A heavy tenant's big job submitted *before* a light tenant's later
/// small jobs cannot head-of-line-block them: under FIFO the light jobs
/// queue behind the heavy job's whole map phase; under fair-share the
/// light tenant keeps its share and its latency collapses.
#[test]
fn heavy_job_cannot_head_of_line_block_light_tenant() {
    let run = |policy: SchedulerPolicy| -> (Vec<SimDuration>, SimDuration) {
        let mut c = cluster(4, 202, policy);
        let mut session = c.session();
        let heavy = session.submit(slot_job("heavy", "heavy", 160, 8));
        let l1 = session.submit_after(
            SimDuration::from_secs(30),
            slot_job("light-1", "light", 8, 4),
        );
        let l2 = session.submit_after(
            SimDuration::from_secs(60),
            slot_job("light-2", "light", 8, 4),
        );
        let results = session.run_until_complete();
        assert!(results.iter().all(|r| r.succeeded));
        (
            vec![l1.result().elapsed, l2.result().elapsed],
            heavy.result().elapsed,
        )
    };
    let (fifo_light, fifo_heavy) = run(SchedulerPolicy::Fifo);
    let (fair_light, fair_heavy) = run(SchedulerPolicy::FairShare);
    for (fair, fifo) in fair_light.iter().zip(&fifo_light) {
        assert!(
            fair.as_secs_f64() * 2.0 < fifo.as_secs_f64(),
            "light job latency: fair-share {fair} vs fifo {fifo}"
        );
    }
    // The heavy job pays only its fair price, not a collapse.
    assert!(
        fair_heavy.as_secs_f64() < fifo_heavy.as_secs_f64() * 1.5,
        "heavy job: fair-share {fair_heavy} vs fifo {fifo_heavy}"
    );
}

/// DeadlineSlack meets a feasible deadline that FIFO misses, observed
/// through `JobResult::deadline_met`.
#[test]
fn deadline_slack_meets_deadline_fifo_misses() {
    let run = |policy: SchedulerPolicy| -> (Option<bool>, Option<bool>, bool) {
        let mut c = cluster(4, 203, policy);
        let mut session = c.session();
        let bulk = session.submit(slot_job("bulk", "batch", 80, 8));
        let urgent = session.submit_after(
            SimDuration::from_secs(20),
            slot_job("urgent", "interactive", 8, 4)
                .deadline_at(SimTime::ZERO + SimDuration::from_secs(75)),
        );
        let results = session.run_until_complete();
        let ok = results.iter().all(|r| r.succeeded);
        (bulk.result().deadline_met, urgent.result().deadline_met, ok)
    };
    let (bulk_fifo, urgent_fifo, ok_fifo) = run(SchedulerPolicy::Fifo);
    let (bulk_dl, urgent_dl, ok_dl) = run(SchedulerPolicy::DeadlineSlack);
    assert!(ok_fifo && ok_dl);
    // Deadline-less jobs report no verdict under either policy.
    assert_eq!(bulk_fifo, None);
    assert_eq!(bulk_dl, None);
    // The same feasible deadline: missed behind FIFO's head-of-line bulk
    // job, met under slack-ordered dispatch.
    assert_eq!(
        urgent_fifo,
        Some(false),
        "FIFO unexpectedly met the deadline"
    );
    assert_eq!(
        urgent_dl,
        Some(true),
        "DeadlineSlack missed a feasible deadline"
    );
}

/// A single job's output digest is identical under every job-level policy:
/// job-level scheduling reorders *which slot serves which job*, never what
/// a job computes.
#[test]
fn single_job_digest_identical_across_job_level_policies() {
    let run = |policy: SchedulerPolicy| -> JobResult {
        let mut c = ClusterBuilder::new()
            .seed(204)
            .workers(3)
            .scheduler(policy)
            .materialized(true)
            .deploy();
        let mut session = c.session();
        session.submit(
            JobBuilder::new("digest")
                .input_file("/d")
                .record_bytes(2 * MB)
                .kernel(FixedCostKernel {
                    per_record: SimDuration::from_millis(20),
                    ..FixedCostKernel::default()
                })
                .map_tasks(6)
                .digest_output()
                .preload(PreloadSpec::new("/d", 12 * MB, 31).block_size(2 * MB)),
        );
        session.run()
    };
    let baseline = run(SchedulerPolicy::Fifo);
    assert!(baseline.succeeded);
    assert_eq!(baseline.digest.1, 6);
    for policy in [
        SchedulerPolicy::LocalityFirst,
        SchedulerPolicy::adaptive(),
        SchedulerPolicy::FairShare,
        SchedulerPolicy::DeadlineSlack,
    ] {
        let r = run(policy);
        assert!(r.succeeded);
        assert_eq!(
            r.digest, baseline.digest,
            "digest drifted under {}",
            r.scheduler
        );
    }
}

/// Build-time validation: a zero fair-share weight is rejected before the
/// job ever reaches a cluster.
#[test]
#[should_panic(expected = "weight must be positive")]
fn zero_weight_is_rejected_at_build_time() {
    let _ = slot_job("w0", "t", 1, 1).weight(0.0).build();
}

/// Submit-time validation: a deadline at or before the submission instant
/// is rejected with the typed error's message.
#[test]
#[should_panic(expected = "deadline_at")]
fn past_deadline_is_rejected_at_submit_time() {
    let mut c = cluster(2, 205, SchedulerPolicy::DeadlineSlack);
    let mut session = c.session();
    // Submission lands at t=10s; the deadline sits at t=5s.
    session.submit_after(
        SimDuration::from_secs(10),
        slot_job("late", "t", 1, 1).deadline_at(SimTime::ZERO + SimDuration::from_secs(5)),
    );
}

/// Speculative duplicates are charged to tenant shares: after a
/// `pick_job` share snapshot, a tenant sitting above the minimum weighted
/// share is refused the straggler copy that the minimum-share tenant is
/// granted for an identical straggling task. Without this gate an
/// over-share tenant could grab extra slots through speculation that
/// regular dispatch would deny it.
#[test]
fn speculation_is_charged_to_tenant_share() {
    use accelmr::mapred::{FairShare, JobId, SchedView, Scheduler, TaskLookup, TaskView};

    let asker = NodeId(9); // the node requesting work
    let runner = NodeId(2); // where the straggling attempts run
    let started = SimTime::ZERO;
    let now = SimTime::ZERO + SimDuration::from_secs(100);
    // One completed 10 s attempt per job: with the default 1.5× slowdown
    // threshold, an attempt running for 100 s is a clear straggler.
    let times = [SimDuration::from_secs(10)];
    let running = [(0u32, runner, started)];
    let task = || TaskView {
        hints: &[],
        is_reduce: false,
        completed: false,
        running: &running,
        size: 1,
    };
    // `rich` occupies 4 slots, `poor` occupies 1, equal weights: `poor`
    // holds the minimum weighted share.
    let rich_tasks = [task(), task(), task(), task()];
    let poor_tasks = [task()];
    fn view<'a>(
        job: u32,
        tenant: &'a str,
        tasks: &'a dyn TaskLookup,
        times: &'a [SimDuration],
    ) -> SchedView<'a> {
        let mut running_slots = 0;
        let mut running_incomplete = 0;
        for i in 0..tasks.len() {
            let t = tasks.get(i);
            running_slots += t.running.len();
            if !t.completed && !t.running.is_empty() {
                running_incomplete += 1;
            }
        }
        SchedView {
            job: JobId(job),
            kernel: "k",
            tenant,
            weight: 1.0,
            deadline: None,
            submitted: SimTime::ZERO,
            eligible: true,
            cluster_slots: 8,
            pending: &[],
            tasks,
            running_slots,
            running_incomplete,
            completed_task_times: times,
            slots_per_node: 2,
        }
    }
    let views = [
        view(0, "rich", &rich_tasks, &times),
        view(1, "poor", &poor_tasks, &times),
    ];

    let mut sched = FairShare::new(&MrConfig::default());
    // The dispatch loop always snapshots shares via pick_job before any
    // straggler offer; `poor` (share 1) wins over `rich` (share 4).
    assert_eq!(sched.pick_job(&views, asker), Some(JobId(1)));
    // `rich` is above the minimum share: no speculative copy.
    assert_eq!(sched.pick_straggler(&views[0], asker, now), None);
    // `poor` is at the minimum share: the straggler is granted.
    assert!(sched.pick_straggler(&views[1], asker, now).is_some());
}
