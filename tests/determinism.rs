//! End-to-end determinism pin for the invariants the static audit pass
//! (`accelmr-audit`) protects: the same churn-wave + fair-share
//! multi-job session, run twice in one process, must produce
//! byte-identical event-trace fingerprints and job digests.
//!
//! This is the dynamic half of the determinism story. The audit rules
//! keep wall-clock, OS randomness, SipHash-seeded maps and unordered
//! map walks out of the event path *statically*; this test observes the
//! result *dynamically* across the hardest paths in the tree at once —
//! elastic membership (join + crash-shaped leave mid-job), DFS
//! re-replication repair, shuffle re-accounting, and weighted
//! fair-share dispatch across tenants. Two in-process runs share
//! nothing but the code, so any hash-order, allocation-order, or
//! ambient-state leak into event scheduling diverges the fingerprint.

use accelmr::mapred::SchedulerPolicy;
use accelmr::prelude::*;

const MB: u64 = 1 << 20;
const RECORD: u64 = 2 * MB;

/// One job's observable result surface: name, success, output digest,
/// reduced kv pairs, and elapsed simulated time.
type JobObservation = (String, bool, (u64, u64), Vec<(u64, u64)>, SimDuration);

/// Everything observable about one session: the full event-stream
/// fingerprint plus each job's result surface.
#[derive(Debug, PartialEq)]
struct SessionObservation {
    fingerprint: u64,
    events: u64,
    jobs: Vec<JobObservation>,
    joined: u64,
    left: u64,
}

fn churn_fair_share_session(seed: u64) -> SessionObservation {
    let mut cluster = ClusterBuilder::new()
        .seed(seed)
        .workers(4)
        .scheduler(SchedulerPolicy::FairShare)
        .env(CellEnvFactory {
            materialized: true,
            ..CellEnvFactory::default()
        })
        .materialized(true)
        .mr(MrConfig {
            tt_dead_after: SimDuration::from_secs(12),
            ..MrConfig::default()
        })
        .dfs(DfsConfig {
            dead_after: SimDuration::from_secs(12),
            ..DfsConfig::default()
        })
        .deploy();
    cluster.sim.enable_trace(1 << 14);
    let mut session = cluster.session();

    // Two joins and one crash-shaped leave land while the map queues are
    // deep: exercises fabric link growth, DataNode spawn/rewire, DFS
    // re-replication repair, and shuffle re-accounting.
    let joined = session.churn(ChurnSchedule::wave(
        2,
        &[NodeId(1)],
        SimDuration::from_secs(10),
        SimDuration::from_secs(8),
    ));
    assert_eq!(joined, vec![NodeId(5), NodeId(6)]);

    // A heavy sorting tenant and a light staggered pi tenant compete
    // under weighted fair-share the whole way through the churn wave.
    session.submit(
        presets::terasort_replicated("/gray", 48 * RECORD, 3, 2)
            .name("det-sort")
            .record_bytes(RECORD)
            .map_tasks(48)
            .tenant("tenant-heavy")
            .weight(2.0),
    );
    session.submit_after(
        SimDuration::from_secs(5),
        presets::pi(PiMapper::Cell, 7, 20_000_000)
            .name("det-pi")
            .map_tasks(8)
            .tenant("tenant-light")
            .weight(1.0),
    );

    let results = session.run_until_complete();
    assert!(results.iter().all(|r| r.succeeded), "{results:?}");
    SessionObservation {
        fingerprint: cluster.sim.trace().fingerprint(),
        events: cluster.sim.trace().recorded(),
        jobs: results
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    r.succeeded,
                    r.digest,
                    r.kv.clone(),
                    r.elapsed,
                )
            })
            .collect(),
        joined: cluster.sim.stats().counter("cluster.nodes_joined"),
        left: cluster.sim.stats().counter("cluster.nodes_left"),
    }
}

/// Two runs of the identical churn + fair-share session in one process:
/// fingerprints and digests must be byte-identical. This pins the
/// FxHasher fixed seed and map-iteration stability behind the static
/// audit rules — a `RandomState` map or unsorted map walk anywhere in
/// the event path shows up here as a fingerprint mismatch.
#[test]
fn churn_fair_share_session_is_bit_reproducible() {
    let first = churn_fair_share_session(97);
    let second = churn_fair_share_session(97);
    // The wave actually happened (both runs, asserted via first).
    assert_eq!((first.joined, first.left), (2, 1));
    assert_eq!(
        first.fingerprint, second.fingerprint,
        "event streams diverged: {first:?} vs {second:?}"
    );
    assert_eq!(first, second, "job observations diverged");
}

/// A different seed must change the schedule (heartbeat jitter) — the
/// fingerprint is a real function of the seed, not a constant.
#[test]
fn different_seed_changes_the_event_stream() {
    let a = churn_fair_share_session(97);
    let b = churn_fair_share_session(98);
    assert_ne!(a.fingerprint, b.fingerprint);
}
