//! The chaos plane, end to end: deterministic fault injection through
//! [`FaultPlan`], gray-failure and partition hardening, epoch fencing
//! under false-positive death, and the job-level liveness watchdog.
//!
//! The invariants pinned here are the PR's acceptance bar:
//!
//! * faulted runs either complete digest-exact or terminate with a typed
//!   [`JobError`] — they never hang;
//! * kv/digest accounting stays exactly-once under healed partitions and
//!   heartbeat loss (zombie reports are fenced, not double-folded);
//! * the same seed with the same plan reproduces byte-identical results;
//! * an *empty* plan is free: no driver spawns, and the event trace is
//!   byte-identical to a run that never touched the chaos API.

use accelmr::mapred::FixedCostKernel;
use accelmr::prelude::*;

const MB: u64 = 1 << 20;
const RECORD: u64 = 2 * MB;
const SEED: u64 = 512;

/// A cluster with the hardened runtime profile (I/O timeouts, failover,
/// blacklisting, watchdog) and fast churn detection for test latency.
fn hardened_cluster(seed: u64) -> accelmr::mapred::MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(4)
        .mr(MrConfig {
            tt_dead_after: SimDuration::from_secs(12),
            shuffle_fetch_timeout: Some(SimDuration::from_secs(8)),
            read_timeout: Some(SimDuration::from_secs(5)),
            job_stall_timeout: Some(SimDuration::from_secs(30)),
            ..MrConfig::hardened()
        })
        .dfs(DfsConfig {
            dead_after: SimDuration::from_secs(12),
            ..DfsConfig::default()
        })
        .deploy()
}

/// A terasort-shaped shuffle job: file input (exercising DFS reads) into
/// a full map→shuffle→reduce pipeline whose reduce aggregate equals the
/// input size iff every record was counted exactly once.
fn sort_job(len: u64, tasks: usize) -> JobBuilder {
    presets::terasort_replicated("/chaos", len, 3, 2)
        .name("chaos-sort")
        .record_bytes(RECORD)
        .map_tasks(tasks)
}

/// A pure-compute job (no DFS reads): `tasks` map tasks of `task_secs`
/// seconds each, aggregated over RPC.
fn compute_job(tasks: usize, task_secs: u64) -> JobBuilder {
    JobBuilder::new("chaos-compute")
        .synthetic(task_secs * 10_000_000 * tasks as u64)
        .map_tasks(tasks)
        .kernel(FixedCostKernel::default())
        .rpc_aggregate(SumReducer {
            cycles_per_byte: 1.0,
        })
}

/// Runs one sort job under `plan` and returns its result surface.
fn run_sorted(seed: u64, plan: FaultPlan) -> (JobResult, u64, u64) {
    let mut cluster = hardened_cluster(seed);
    let mut session = cluster.session();
    session.faults(plan);
    session.submit(sort_job(24 * RECORD, 24));
    let result = session.run();
    let healed = cluster.sim.stats().counter("net.partitions_healed");
    let retries = cluster.sim.stats().counter("dfs.read_retries")
        + cluster.sim.stats().counter("mr.attempt_retries");
    (result, healed, retries)
}

/// A partition injected mid-run and healed later: the job completes with
/// exactly-once accounting (stalled transfers resume or fail over — no
/// record is lost or double-counted), and the same seed with the same
/// plan reproduces the identical result surface.
#[test]
fn healed_partition_is_exactly_once_and_deterministic() {
    // The fault-free run takes ~27 s with the shuffle in its tail; a 30 s
    // partition from t=12 s covers the whole shuffle, so fetches against
    // the partitioned node's map outputs must ride the timeout/backoff
    // retry path (8 s fetch timeout ≪ window) until the heal lets one
    // through.
    let plan = || {
        FaultPlan::new().partition_at(
            SimDuration::from_secs(12),
            NodeId(2),
            SimDuration::from_secs(30),
        )
    };
    let (first, healed, retries) = run_sorted(SEED, plan());
    assert!(first.succeeded, "faulted run failed: {:?}", first.error);
    let total: u64 = first.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, 24 * RECORD, "exactly-once violated under partition");
    assert_eq!(healed, 1, "partition did not heal");
    assert!(retries >= 1, "partition exercised no retry path");

    let (second, _, _) = run_sorted(SEED, plan());
    assert_eq!(first.digest, second.digest, "same-seed digest diverged");
    assert_eq!(first.kv, second.kv, "same-seed kv diverged");
    assert_eq!(first.elapsed, second.elapsed, "same-seed timing diverged");
}

/// Heartbeat loss long enough to trip death detection: the JobTracker
/// falsely declares the node dead, requeues and fences its attempts, and
/// rejects the zombie completion reports that ride the first post-window
/// heartbeat — the output matches the fault-free baseline exactly, and
/// the node rejoins service (resurrection) instead of being lost.
#[test]
fn heartbeat_loss_fences_zombie_reports_exactly_once() {
    let run = |plan: FaultPlan| {
        let mut cluster = hardened_cluster(SEED + 1);
        let mut session = cluster.session();
        session.faults(plan);
        session.submit(compute_job(8, 40));
        let result = session.run();
        let stats = |n| cluster.sim.stats().counter(n);
        (
            result,
            stats("mr.fenced_reports"),
            stats("mr.tt_resurrections"),
            stats("mr.heartbeats_suppressed"),
        )
    };
    let (baseline, f0, r0, s0) = run(FaultPlan::new());
    assert!(baseline.succeeded);
    assert_eq!((f0, r0, s0), (0, 0, 0), "fault-free run saw chaos effects");

    let plan = FaultPlan::new().heartbeat_loss_at(
        SimDuration::from_secs(12),
        NodeId(2),
        SimDuration::from_secs(25),
    );
    let (faulted, fenced, resurrections, suppressed) = run(plan);
    assert!(faulted.succeeded, "faulted run failed: {:?}", faulted.error);
    assert!(suppressed >= 1, "no heartbeat was suppressed");
    assert_eq!(resurrections, 1, "false-positive death did not resurrect");
    assert!(fenced >= 1, "no zombie report was fenced");
    assert_eq!(
        faulted.kv, baseline.kv,
        "exactly-once violated: zombie fold leaked into the aggregate"
    );
    assert_eq!(faulted.digest, baseline.digest, "digest drifted");
}

/// Gray failure: a node silently computes at quarter speed for a window.
/// Nothing crashes and no heartbeat is missed, so only the data plane can
/// notice — the job still completes digest-exact, slower than fault-free.
#[test]
fn gray_failure_completes_exact_but_slower() {
    let run = |plan: FaultPlan| {
        let mut cluster = hardened_cluster(SEED + 2);
        let mut session = cluster.session();
        session.faults(plan);
        session.submit(compute_job(16, 10));
        let result = session.run();
        let gray = cluster.sim.stats().counter("mr.gray_injected");
        (result, gray)
    };
    let (baseline, g0) = run(FaultPlan::new());
    assert!(baseline.succeeded);
    assert_eq!(g0, 0);

    let plan = FaultPlan::new().gray_at(
        SimDuration::from_secs(10),
        NodeId(1),
        0.25,
        SimDuration::from_secs(30),
    );
    let (faulted, gray) = run(plan);
    assert!(faulted.succeeded, "faulted run failed: {:?}", faulted.error);
    assert_eq!(gray, 1, "gray fault was not injected");
    assert_eq!(faulted.kv, baseline.kv, "gray failure corrupted output");
    assert!(
        faulted.elapsed > baseline.elapsed,
        "a quarter-speed node should inflate the makespan ({} vs {})",
        faulted.elapsed,
        baseline.elapsed
    );
}

/// The job-level liveness watchdog: when every worker is gone and the job
/// can make no further progress, it terminates with a typed
/// [`JobError::Stalled`] instead of hanging the simulation.
#[test]
fn watchdog_terminates_unservable_job_with_typed_error() {
    let mut cluster = hardened_cluster(SEED + 3);
    let mut session = cluster.session();
    // Every worker crashes mid-map; nothing is left to dispatch to.
    for node in 1..=4 {
        session.remove_node_at(SimDuration::from_secs(12), NodeId(node));
    }
    session.submit(compute_job(16, 20));
    let result = session.run();
    assert!(!result.succeeded);
    assert!(
        matches!(result.error, Some(JobError::Stalled { .. })),
        "expected a typed stall, got {:?}",
        result.error
    );
    assert_eq!(cluster.sim.stats().counter("mr.jobs_stalled"), 1);
}

/// An empty `FaultPlan` queued through the chaos API is completely free:
/// no driver actor spawns, and the event-trace fingerprint is
/// byte-identical to a run that never touched the API. This is the no-op
/// half of the determinism contract — chaos is strictly opt-in.
#[test]
fn empty_fault_plan_leaves_traces_byte_identical() {
    let run = |with_api: bool| {
        let mut cluster = ClusterBuilder::new().seed(SEED + 4).workers(3).deploy();
        cluster.sim.enable_trace(1 << 14);
        let mut session = cluster.session();
        if with_api {
            session.faults(FaultPlan::new());
        }
        session.submit(compute_job(6, 5));
        let result = session.run();
        (result.digest, cluster.sim.trace().fingerprint())
    };
    let (d_plain, f_plain) = run(false);
    let (d_api, f_api) = run(true);
    assert_eq!(d_plain, d_api, "empty plan changed the digest");
    assert_eq!(f_plain, f_api, "empty plan changed the event trace");
}

/// Preemption kills racing chaos-plane node death: fair-share reclaims
/// attempts on a node whose heartbeats are about to be suppressed long
/// enough to trip false-positive death detection. The same attempts can
/// be preemption-killed, death-fenced, requeued, and reported by the
/// zombie tracker in any interleaving — contributions must still fold
/// exactly once, matching a fault-free non-preemptive baseline byte for
/// byte.
#[test]
fn preemption_kill_racing_node_death_is_exactly_once() {
    let run = |preemption: PreemptionTuning, plan: FaultPlan| {
        let mut cluster = ClusterBuilder::new()
            .seed(SEED + 5)
            .workers(4)
            .mr(MrConfig {
                tt_dead_after: SimDuration::from_secs(12),
                shuffle_fetch_timeout: Some(SimDuration::from_secs(8)),
                read_timeout: Some(SimDuration::from_secs(5)),
                job_stall_timeout: Some(SimDuration::from_secs(30)),
                scheduler: SchedulerPolicy::FairShare,
                preemption,
                ..MrConfig::hardened()
            })
            .dfs(DfsConfig {
                dead_after: SimDuration::from_secs(12),
                ..DfsConfig::default()
            })
            .deploy();
        let mut session = cluster.session();
        session.faults(plan);
        let greedy = session.submit(compute_job(8, 60).name("greedy").tenant("batch"));
        let nimble = session.submit_after(
            SimDuration::from_secs(2),
            compute_job(8, 20).name("nimble").tenant("interactive"),
        );
        let results = session.run_until_complete();
        assert!(
            results.iter().all(|r| r.succeeded),
            "a job failed: {:?}",
            results.iter().find(|r| !r.succeeded).map(|r| &r.error)
        );
        let out = (greedy.result(), nimble.result());
        drop(session);
        let stats = |n| cluster.sim.stats().counter(n);
        (
            out,
            stats("mr.preemptions"),
            stats("mr.fenced_reports"),
            stats("mr.tt_resurrections"),
        )
    };

    let ((greedy_base, nimble_base), k0, f0, r0) =
        run(PreemptionTuning::default(), FaultPlan::new());
    assert_eq!((k0, f0, r0), (0, 0, 0), "baseline saw chaos effects");

    // Greedy saturates all 8 slots by ~t=11 s; nimble becomes eligible at
    // ~t=10 s and fair-share starts reclaiming on saturated heartbeats —
    // including node 2's, which kills its own greedy attempts, reports
    // the freed slots, and picks up nimble's work just before its
    // heartbeats vanish at t=17 s for long enough to trip the 12 s death
    // window. Kill, death fence, requeue, and zombie completion reports
    // all land on overlapping attempts.
    let tuning = PreemptionTuning {
        max_kills_per_job: 8,
        min_attempt_age: SimDuration::from_secs(1),
        cooldown: SimDuration::from_secs(1),
        slack_margin: SimDuration::from_secs(30),
    };
    let plan = FaultPlan::new().heartbeat_loss_at(
        SimDuration::from_secs(17),
        NodeId(2),
        SimDuration::from_secs(25),
    );
    let ((greedy_chaos, nimble_chaos), kills, fenced, resurrections) = run(tuning, plan);
    assert!(kills >= 1, "no preemption fired before the death window");
    assert_eq!(resurrections, 1, "false-positive death did not resurrect");
    assert!(fenced >= 1, "no report was fenced across the race");
    assert_eq!(
        greedy_chaos.kv, greedy_base.kv,
        "exactly-once violated for the preempted job"
    );
    assert_eq!(
        nimble_chaos.kv, nimble_base.kv,
        "exactly-once violated for the beneficiary job"
    );
    assert_eq!(greedy_chaos.digest, greedy_base.digest);
    assert_eq!(nimble_chaos.digest, nimble_base.digest);
}

/// The seeded storm generator is a pure function of its seed: identical
/// seeds produce identical plans, different seeds different ones.
#[test]
fn seeded_storm_is_deterministic() {
    let nodes: Vec<NodeId> = (1..=8).map(NodeId).collect();
    let storm = |seed| {
        FaultPlan::storm(
            seed,
            &nodes,
            10,
            SimDuration::from_secs(5),
            SimDuration::from_secs(60),
            SimDuration::from_secs(10),
        )
    };
    assert_eq!(storm(7).events(), storm(7).events());
    assert_ne!(storm(7).events(), storm(8).events());
    assert_eq!(storm(7).events().len(), 10);
}
