//! Acceptance tests of the builder/session surface: builder defaults match
//! the old positional-argument defaults event-for-event, concurrent
//! sessions are deterministic across reruns, staggered submission orders
//! arrivals, and the deprecated wrappers still behave.

use accelmr::prelude::*;

fn pi_job(name: &str, units: u64, kernel_seed: u64) -> JobBuilder {
    presets::pi(PiMapper::Cell, kernel_seed, units)
        .name(name)
        .map_tasks(8)
}

/// `(elapsed, kv, digest, trace fingerprint)` of one Pi job — everything
/// determinism assertions compare.
type RunSignature = (SimDuration, Vec<(u64, u64)>, (u64, u64), u64);

#[test]
fn builder_defaults_equal_old_positional_defaults() {
    // The builder path and the deprecated positional path must deploy
    // event-for-event identical clusters: same actors, same schedule, same
    // job outcome, same trace fingerprint.
    let via_builder = || -> RunSignature {
        let mut c = ClusterBuilder::new()
            .seed(42)
            .workers(4)
            .env(CellEnvFactory::default())
            .deploy();
        c.sim.enable_trace(1 << 14);
        let mut session = c.session();
        session.submit(pi_job("defaults", 50_000_000, 9));
        let r = session.run();
        (r.elapsed, r.kv, r.digest, c.sim.trace().fingerprint())
    };
    #[allow(deprecated)]
    let via_positional = || -> RunSignature {
        let env = CellEnvFactory::default();
        let mut c = deploy_cluster(
            42,
            4,
            NetConfig::default(),
            DfsConfig::default(),
            MrConfig::default(),
            &env,
            false,
        );
        c.sim.enable_trace(1 << 14);
        let r = run_job(
            &mut c.sim,
            &c.mr,
            &c.dfs,
            vec![],
            pi_job("defaults", 50_000_000, 9).build(),
        );
        (r.elapsed, r.kv, r.digest, c.sim.trace().fingerprint())
    };
    assert_eq!(via_builder(), via_positional());
}

fn concurrent_batch(seed: u64) -> (Vec<JobResult>, u64) {
    let mut c = ClusterBuilder::new()
        .seed(seed)
        .workers(4)
        .env(CellEnvFactory::default())
        .deploy();
    c.sim.enable_trace(1 << 14);
    let mut session = c.session();
    session.submit(pi_job("job-a", 300_000_000, 1));
    session.submit(pi_job("job-b", 500_000_000, 2));
    session.submit_after(SimDuration::from_secs(20), pi_job("job-c", 100_000_000, 3));
    let results = session.run_until_complete();
    (results, c.sim.trace().fingerprint())
}

#[test]
fn concurrent_session_is_deterministic_across_reruns() {
    let (r1, f1) = concurrent_batch(11);
    let (r2, f2) = concurrent_batch(11);
    assert_eq!(f1, f2, "event traces diverged between identical reruns");
    assert_eq!(r1.len(), 3);
    for (a, b) in r1.iter().zip(&r2) {
        assert!(a.succeeded);
        assert_eq!(a.name, b.name);
        assert_eq!(a.job, b.job);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.kv, b.kv);
        assert_eq!(a.digest, b.digest);
    }
}

#[test]
fn concurrent_jobs_compute_what_they_compute_alone() {
    // Co-scheduling changes timing, never results: each job's aggregated
    // counters under contention are byte-identical to its solo run on an
    // identical cluster.
    let (concurrent, _) = concurrent_batch(11);
    for (name, units, kernel_seed) in [
        ("job-a", 300_000_000u64, 1u64),
        ("job-b", 500_000_000, 2),
        ("job-c", 100_000_000, 3),
    ] {
        let mut c = ClusterBuilder::new()
            .seed(11)
            .workers(4)
            .env(CellEnvFactory::default())
            .deploy();
        let mut session = c.session();
        session.submit(pi_job(name, units, kernel_seed));
        let solo = session.run();
        let co = concurrent.iter().find(|r| r.name == name).unwrap();
        assert_eq!(co.kv, solo.kv, "{name} kv changed under co-scheduling");
        assert_eq!(co.digest, solo.digest);
        assert_eq!(co.map_tasks, solo.map_tasks);
    }
}

#[test]
fn submit_after_staggers_arrival() {
    let run = |delay: SimDuration| {
        let mut c = ClusterBuilder::new()
            .seed(3)
            .workers(2)
            .env(CellEnvFactory::default())
            .deploy();
        let mut session = c.session();
        let first = session.submit(pi_job("first", 200_000_000, 1));
        let late = session.submit_after(delay, pi_job("late", 1_000_000, 2));
        session.run_until_complete();
        (first.result(), late.result())
    };
    // With a long stagger the late job arrives on an idle cluster, so it
    // runs at its floor time; submitted together it queues behind the
    // first job's slot occupancy and takes longer.
    let (_, late_staggered) = run(SimDuration::from_secs(600));
    let (first_together, late_together) = run(SimDuration::ZERO);
    assert!(first_together.succeeded);
    assert!(
        late_staggered.elapsed < late_together.elapsed,
        "staggered {} should beat contended {}",
        late_staggered.elapsed,
        late_together.elapsed
    );
}

#[test]
fn submit_after_zero_equals_submit() {
    let run = |staggered: bool| {
        let mut c = ClusterBuilder::new()
            .seed(8)
            .workers(2)
            .env(CellEnvFactory::default())
            .deploy();
        c.sim.enable_trace(1 << 14);
        let mut session = c.session();
        if staggered {
            session.submit_after(SimDuration::ZERO, pi_job("z", 10_000_000, 4));
        } else {
            session.submit(pi_job("z", 10_000_000, 4));
        }
        let r = session.run();
        (r.elapsed, r.kv, c.sim.trace().fingerprint())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn handle_index_is_batch_relative() {
    // A reused session starts a fresh result vector per batch; handles
    // index into the batch that drives them.
    let mut c = ClusterBuilder::new()
        .seed(5)
        .workers(2)
        .env(CellEnvFactory::default())
        .deploy();
    let mut session = c.session();
    let a = session.submit(pi_job("first-batch", 1_000_000, 1));
    assert_eq!(a.index(), 0);
    let r1 = session.run_until_complete();
    assert_eq!(r1[a.index()].name, "first-batch");

    let b = session.submit(pi_job("second-batch", 1_000_000, 2));
    assert_eq!(b.index(), 0);
    let r2 = session.run_until_complete();
    assert_eq!(r2[b.index()].name, "second-batch");
}

#[test]
fn empty_session_returns_no_results() {
    let mut c = ClusterBuilder::new().workers(1).deploy();
    let mut session = c.session();
    assert!(session.run_until_complete().is_empty());
}

#[test]
#[allow(deprecated)]
fn deprecated_wrappers_still_run_jobs() {
    // Old-style positional deployment and blocking run must keep working
    // for external callers mid-migration.
    let env = CellEnvFactory::default();
    let mut c = deploy_cluster(
        1,
        2,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        false,
    );
    let result = run_job(
        &mut c.sim,
        &c.mr,
        &c.dfs,
        vec![],
        pi_job("legacy", 5_000_000, 6).build(),
    );
    assert!(result.succeeded);
    assert_eq!(result.value(1), Some(5_000_000));
}
