//! End-to-end dynamic membership: nodes joining and leaving mid-job
//! through the `Session` churn API, with functional (digest-exact)
//! verification and DFS re-replication convergence.

use accelmr::dfs::NameNode;
use accelmr::hybrid::{job_key, JOB_NONCE};
use accelmr::kernels::aes::modes::ctr_xor;
use accelmr::kernels::{checksum, fill_deterministic, UnorderedDigest};
use accelmr::prelude::*;

const MB: u64 = 1 << 20;
const RECORD: u64 = 2 * MB;
const SEED: u64 = 77;

/// Serial reference digest of the encrypted input: what the job's
/// order-independent output digest must equal if and only if every record
/// was mapped exactly once.
fn reference_digest(file_len: u64) -> (u64, u64) {
    let key = job_key();
    let mut digest = UnorderedDigest::new();
    for r in 0..(file_len / RECORD) {
        let mut buf = vec![0u8; RECORD as usize];
        fill_deterministic(SEED, r * RECORD, &mut buf);
        ctr_xor(&key, AesImpl::TTable, JOB_NONCE, r * RECORD / 16, &mut buf);
        digest.add(checksum(&buf));
    }
    digest.finish()
}

fn elastic_cluster(seed: u64) -> accelmr::mapred::MrCluster {
    ClusterBuilder::new()
        .seed(seed)
        .workers(4)
        .env(CellEnvFactory {
            materialized: true,
            ..CellEnvFactory::default()
        })
        .materialized(true)
        .mr(MrConfig {
            tt_dead_after: SimDuration::from_secs(12),
            ..MrConfig::default()
        })
        .dfs(DfsConfig {
            dead_after: SimDuration::from_secs(12),
            ..DfsConfig::default()
        })
        .deploy()
}

fn encrypt_job(len: u64, tasks: usize) -> JobBuilder {
    JobBuilder::new("churn-encrypt")
        .input_file("/plain")
        .record_bytes(RECORD)
        .kernel(accelmr::hybrid::CellAesKernel::new())
        .map_tasks(tasks)
        .digest_output()
        .preload(
            PreloadSpec::new("/plain", len, SEED)
                .block_size(RECORD)
                .replication(2),
        )
}

/// A node joined mid-job takes real work and the job's output stays
/// byte-exact (every record mapped exactly once).
#[test]
fn joined_node_takes_work_with_exact_output() {
    let len = 48 * MB; // 24 records over 4 workers (8 slots): 3 waves
    let mut cluster = elastic_cluster(41);
    let mut session = cluster.session();
    // Join two nodes while the map queue is still deep.
    let a = session.add_node_at(SimDuration::from_secs(10));
    let b = session.add_node_at(SimDuration::from_secs(13));
    assert_eq!((a, b), (NodeId(5), NodeId(6)));
    session.submit(encrypt_job(len, 24));
    let result = session.run();

    assert!(result.succeeded);
    assert_eq!(
        result.digest,
        reference_digest(len),
        "exactly-once violated"
    );
    let on_joined: u32 = result
        .dispatch_counts()
        .iter()
        .filter(|&&(n, _)| n == a || n == b)
        .map(|&(_, c)| c)
        .sum();
    assert!(on_joined > 0, "joined nodes took no work: {result:?}");
    assert_eq!(cluster.sim.stats().counter("cluster.nodes_joined"), 2);
}

/// Satellite: kill a DataNode('s whole node) mid-job. The job completes
/// with correct output (reads reroute to surviving replicas, lost
/// attempts re-execute) and every block returns to target replication.
#[test]
fn departed_replica_holder_is_repaired_and_output_exact() {
    let len = 48 * MB;
    let mut cluster = elastic_cluster(42);
    let namenode = cluster.dfs.namenode;
    let mut session = cluster.session();
    session.remove_node_at(SimDuration::from_secs(15), NodeId(2));
    session.submit(encrypt_job(len, 24));
    let result = session.run();

    assert!(result.succeeded);
    assert_eq!(
        result.digest,
        reference_digest(len),
        "exactly-once violated"
    );
    assert_eq!(cluster.sim.stats().counter("cluster.nodes_left"), 1);

    // Drain past the detection window + repair pipelines, then audit.
    let resume = cluster.sim.now();
    cluster.sim.run_until(resume + SimDuration::from_secs(60));
    assert!(cluster.sim.stats().counter("dfs.replications_started") >= 1);
    let nn = cluster
        .sim
        .actor_ref::<NameNode>(namenode)
        .expect("namenode alive");
    assert_eq!(nn.under_replicated_blocks(), 0, "repair did not converge");
    let counts = nn.replica_counts("/plain").expect("file exists");
    assert!(
        counts.iter().all(|&c| c == 2),
        "blocks not back at target replication: {counts:?}"
    );
}

/// Joins and leaves together, driven by the `ChurnSchedule` helper, on a
/// shuffle job: map outputs lost to departures re-execute with their
/// contributions subtracted, so the final aggregate is still exact.
#[test]
fn churn_wave_preserves_shuffle_accounting() {
    let mut cluster = elastic_cluster(43);
    let mut session = cluster.session();
    // All three events land while the map queue is still deep (the job
    // runs ~30 s of simulated time).
    let joined = session.churn(ChurnSchedule::wave(
        2,
        &[NodeId(1)],
        SimDuration::from_secs(10),
        SimDuration::from_secs(8),
    ));
    assert_eq!(joined, vec![NodeId(5), NodeId(6)]);
    // 48 records, one pair per record through the shuffle.
    session.submit(
        presets::terasort_replicated("/gray", 48 * RECORD, 3, 2)
            .name("churn-sort")
            .record_bytes(RECORD)
            .map_tasks(48),
    );
    let result = session.run();
    assert!(result.succeeded);
    // MergeReduceKernel aggregates to the total bytes sorted: exactly the
    // input size iff no record was lost or double-counted under churn.
    let total: u64 = result.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, 48 * RECORD, "shuffle accounting drifted: {result:?}");
    assert_eq!(cluster.sim.stats().counter("cluster.nodes_joined"), 2);
    assert_eq!(cluster.sim.stats().counter("cluster.nodes_left"), 1);
}

/// Joins observed while a job initializes are part of the worker set its
/// splits are planned against (the plan is computed after init, against
/// the live node set).
#[test]
fn join_during_init_grows_the_split_plan() {
    let mut cluster = elastic_cluster(44);
    let mut session = cluster.session();
    // Job initialization takes 8 s; these joins land inside it.
    session.add_node_at(SimDuration::from_secs(2));
    session.add_node_at(SimDuration::from_secs(3));
    session.submit(
        JobBuilder::new("grown-pi")
            .synthetic(60_000_000)
            .kernel(accelmr::hybrid::CellPiKernel::new(5))
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            }),
    );
    let result = session.run();
    assert!(result.succeeded);
    // 4 deploy workers + 2 joins, 2 slots each.
    assert_eq!(result.map_tasks, 12, "plan ignored the joined nodes");
}

/// A join that lands *after* split planning but before the first dispatch
/// re-plans the job wholesale (counted by `mr.jobs_replanned`).
#[test]
fn join_before_dispatch_replans_splits() {
    let mut cluster = elastic_cluster(45);
    let mut session = cluster.session();
    // Tasks are built when init ends at t = 8 s; this join lands right
    // after, before the next dispatch heartbeat (deterministic for the
    // pinned seed).
    let joined = session.add_node_at(SimDuration::from_millis(8_020));
    session.submit(
        JobBuilder::new("replanned-pi")
            .synthetic(60_000_000)
            .kernel(accelmr::hybrid::CellPiKernel::new(5))
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            }),
    );
    let result = session.run();
    assert!(result.succeeded);
    assert!(
        cluster.sim.stats().counter("mr.jobs_replanned") >= 1,
        "join between planning and dispatch did not re-plan"
    );
    // 4 deploy workers + 1 join, 2 slots each.
    assert_eq!(result.map_tasks, 10, "re-plan ignored the joined node");
    let _ = joined;
}

/// A batch with churn but no jobs still applies the membership changes
/// (the simulation is driven just past the last scheduled change).
#[test]
fn jobless_batch_applies_churn() {
    let mut cluster = elastic_cluster(46);
    let mut session = cluster.session();
    let n = session.add_node_at(SimDuration::from_secs(5));
    let results = session.run_until_complete();
    assert!(results.is_empty());
    assert_eq!(cluster.sim.stats().counter("cluster.nodes_joined"), 1);
    assert!(cluster.mr.tasktracker_on(n).is_some());
    assert!(cluster.dfs.datanode_on(n).is_some());
}

/// The deprecated positional deployment path retains no deployment
/// context, so membership calls are rejected loudly.
#[test]
#[should_panic(expected = "dynamic membership requires")]
fn membership_requires_builder_deployment() {
    #[allow(deprecated)]
    let mut c = accelmr::mapred::deploy_cluster(
        1,
        2,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &accelmr::mapred::NullEnvFactory,
        false,
    );
    let mut session = c.session();
    let _ = session.add_node_at(SimDuration::from_secs(1));
}
