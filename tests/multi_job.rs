//! Concurrent jobs on one cluster: the JobTracker multiplexes two jobs'
//! tasks over the same slots (FIFO between jobs, as Hadoop 0.19's default
//! scheduler). Both must complete correctly, and the cluster must be
//! reusable for a further batch afterwards.

use accelmr::prelude::*;

fn pi_job(name: &str, units: u64, seed: u64) -> JobBuilder {
    presets::pi(PiMapper::Cell, seed, units)
        .name(name)
        .map_tasks(8)
}

#[test]
fn two_concurrent_jobs_share_the_cluster() {
    let mut cluster = ClusterBuilder::new()
        .seed(77)
        .workers(4)
        .env(CellEnvFactory::default())
        .deploy();

    let mut session = cluster.session();
    let a = session.submit(pi_job("job-a", 400_000_000, 1));
    let b = session.submit(pi_job("job-b", 400_000_000, 2));
    assert!(!a.is_complete() && b.try_result().is_none());
    let results = session.run_until_complete();

    assert_eq!(results.len(), 2);
    assert_eq!(results[0].name, "job-a");
    assert_eq!(results[1].name, "job-b");
    for r in &results {
        assert!(r.succeeded, "{} failed", r.name);
        assert_eq!(r.map_tasks, 8);
        assert_eq!(r.value(1), Some(400_000_000));
    }
    // Distinct jobs, distinct ids; handles observe the same results.
    assert_ne!(results[0].job, results[1].job);
    assert_eq!(a.result().job, results[0].job);
    assert_eq!(b.result().job, results[1].job);
    assert_eq!(a.index(), 0);
    assert_eq!(b.index(), 1);

    // The cluster stays serviceable: run a third job to completion through
    // a fresh batch on the same session.
    let mut session = cluster.session();
    session.submit(pi_job("job-c", 10_000_000, 3));
    let third = session.run();
    assert!(third.succeeded);
}

#[test]
fn concurrent_jobs_interleave_rather_than_serialize() {
    // Two jobs submitted together must finish faster than the sum of their
    // solo runtimes (they overlap on the cluster), yet each job's counters
    // are untouched by the co-runner.
    let solo = |seed: u64| {
        let mut cluster = ClusterBuilder::new()
            .seed(500)
            .workers(4)
            .env(CellEnvFactory::default())
            .deploy();
        let mut session = cluster.session();
        session.submit(pi_job("solo", 400_000_000, seed));
        session.run()
    };
    let s1 = solo(1);
    let s2 = solo(2);

    let mut cluster = ClusterBuilder::new()
        .seed(500)
        .workers(4)
        .env(CellEnvFactory::default())
        .deploy();
    let mut session = cluster.session();
    session.submit(pi_job("co-1", 400_000_000, 1));
    session.submit(pi_job("co-2", 400_000_000, 2));
    let co = session.run_until_complete();

    let serialized = s1.elapsed + s2.elapsed;
    let makespan = co.iter().map(|r| r.elapsed).max().unwrap();
    assert!(
        makespan < serialized,
        "no overlap: makespan {makespan} vs serialized {serialized}"
    );
    // Same samples counted regardless of co-scheduling.
    assert_eq!(co[0].value(1), s1.value(1));
    assert_eq!(co[1].value(1), s2.value(1));
}
