//! Concurrent jobs on one cluster: the JobTracker multiplexes two jobs'
//! tasks over the same slots (FIFO between jobs, as Hadoop 0.19's default
//! scheduler). Both must complete correctly, and the cluster must be
//! reusable for a third job afterwards.

use std::sync::{Arc, Mutex};

use accelmr::des::prelude::*;
use accelmr::mapred::{JobComplete, JobResult, SumReducer};
use accelmr::prelude::*;

struct TwoJobDriver {
    mr: accelmr::mapred::MrHandle,
    specs: Vec<JobSpec>,
    done: Arc<Mutex<Vec<JobResult>>>,
    expected: usize,
}

impl Actor for TwoJobDriver {
    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Start => {
                let node = self.mr.head_node;
                for spec in self.specs.drain(..) {
                    self.mr.submit(ctx, node, spec);
                }
            }
            Event::Msg { msg, .. } => {
                if msg.is::<JobComplete>() {
                    let done = msg.downcast::<JobComplete>().expect("checked");
                    let mut v = self.done.lock().unwrap();
                    v.push(done.result);
                    if v.len() == self.expected {
                        ctx.stop();
                    }
                }
            }
            _ => {}
        }
    }
}

fn pi_spec(name: &str, units: u64, seed: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        input: JobInput::Synthetic { total_units: units },
        kernel: Arc::new(CellPiKernel::new(seed)),
        num_map_tasks: Some(8),
        output: OutputSink::Discard,
        reduce: ReduceSpec::RpcAggregate {
            reducer: Arc::new(SumReducer { cycles_per_byte: 1.0 }),
        },
    }
}

#[test]
fn two_concurrent_jobs_share_the_cluster() {
    let env = CellEnvFactory::default();
    let mut cluster = deploy_cluster(
        77,
        4,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        false,
    );
    let done = Arc::new(Mutex::new(Vec::new()));
    cluster.sim.spawn(Box::new(TwoJobDriver {
        mr: cluster.mr.clone(),
        specs: vec![
            pi_spec("job-a", 400_000_000, 1),
            pi_spec("job-b", 400_000_000, 2),
        ],
        done: done.clone(),
        expected: 2,
    }));
    cluster.sim.run();

    let results = done.lock().unwrap();
    assert_eq!(results.len(), 2);
    for r in results.iter() {
        assert!(r.succeeded, "{} failed", r.name);
        assert_eq!(r.map_tasks, 8);
        let total: u64 = r.kv.iter().find(|&&(k, _)| k == 1).unwrap().1;
        assert_eq!(total, 400_000_000);
    }
    // Distinct jobs, distinct ids.
    assert_ne!(results[0].job, results[1].job);

    // The cluster stays serviceable: run a third job to completion.
    let third = accelmr::mapred::run_job(
        &mut cluster.sim,
        &cluster.mr,
        &cluster.dfs,
        vec![],
        pi_spec("job-c", 10_000_000, 3),
    );
    assert!(third.succeeded);
}
