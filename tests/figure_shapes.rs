//! Scaled-down regenerations of every distributed figure, asserting the
//! paper's qualitative claims (who wins, where curves flatten, which series
//! coincide). The full-scale sweeps live in the bench harness; these keep
//! the claims under continuous test.

use accelmr::hybrid::experiments::{
    dist, fig2, fig4, fig5, fig6, fig7, fig8, DistEncryptParams, DistPiParams, Fig2Params,
    Fig6Params,
};
use accelmr::prelude::*;

fn y(series: &accelmr::hybrid::experiments::Series, x: f64) -> f64 {
    series
        .points
        .iter()
        .find(|&&(px, _)| (px - x).abs() < 1e-9)
        .map(|&(_, y)| y)
        .unwrap_or_else(|| panic!("missing x={x} in {}", series.label))
}

#[test]
fn fig2_shape() {
    let fig = fig2(&Fig2Params::default());
    let cell = fig.series("Cell BE").unwrap();
    let cellmr = fig.series("MapReduce Cell").unwrap();
    let ppc = fig.series("PPC").unwrap();
    let p6 = fig.series("Power 6").unwrap();
    // Paper ordering at the large end: Cell > CellMR > Power6 > PPC.
    assert!(y(cell, 1024.0) > y(cellmr, 1024.0));
    assert!(y(cellmr, 1024.0) > y(p6, 1024.0));
    assert!(y(p6, 1024.0) > y(ppc, 1024.0));
    // Cell peaks near 700 MB/s; Power6 near 45; PPC near 11.
    assert!((650.0..730.0).contains(&y(cell, 1024.0)));
    assert!((40.0..50.0).contains(&y(p6, 1024.0)));
    assert!((9.0..13.0).contains(&y(ppc, 1024.0)));
}

#[test]
fn fig6_shape() {
    let fig = fig6(&Fig6Params::default());
    let cell = fig.series("Cell BE").unwrap();
    let p6 = fig.series("Power 6").unwrap();
    let ppc = fig.series("PPC").unwrap();
    // Start-up buries the Cell at small N...
    assert!(y(cell, 1e3) < y(ppc, 1e3));
    // ...and it dominates by ≥1 order at large N (paper: "one order of
    // magnitude faster than the Java kernel running on top of the Power6").
    assert!(y(cell, 1e9) > 10.0 * y(p6, 1e9));
    assert!(y(p6, 1e9) > y(ppc, 1e9));
    // Scalar engines are flat (no warm-up modeled): rate at 1e5 ≈ rate 1e9.
    let flat = y(p6, 1e5) / y(p6, 1e9);
    assert!((0.99..1.01).contains(&flat));
}

fn small_encrypt_params() -> DistEncryptParams {
    DistEncryptParams {
        nodes: vec![2, 4, 8],
        gb_per_mapper: 1, // 1 GB per mapper, as the paper
        total_gb: 16,
        mr_cfg: MrConfig::default(),
    }
}

#[test]
fn fig4_shape_proportional_flat_and_equal() {
    let fig = fig4(&small_encrypt_params());
    let java = fig.series("Java Mapper").unwrap();
    let cell = fig.series("Cell BE Mapper").unwrap();
    for &n in &[2.0, 4.0, 8.0] {
        let ratio = y(java, n) / y(cell, n);
        // "the Cell-accelerated mapper and the Java mapper offer a very
        // similar performance"
        assert!((0.8..1.3).contains(&ratio), "n={n} ratio={ratio:.2}");
    }
    // Proportional load ⇒ roughly flat time across cluster sizes.
    let flatness = y(java, 8.0) / y(java, 2.0);
    assert!((0.7..1.3).contains(&flatness), "flatness {flatness:.2}");
    // And the absolute level is feed-dominated: 1 GB / 8.5 MB/s ≈ 126 s,
    // plus runtime floor. The paper reads ~110-140 s.
    let t = y(java, 4.0);
    assert!((110.0..190.0).contains(&t), "t={t}");
}

#[test]
fn fig5_shape_fixed_dataset_scales_and_series_coincide() {
    let fig = fig5(&small_encrypt_params());
    let java = fig.series("Java Mapper").unwrap();
    let cell = fig.series("Cell BE Mapper").unwrap();
    let empty = fig.series("Empty Mapper").unwrap();
    // Doubling nodes roughly halves time (log-log linear, paper Fig. 5).
    let scaling = y(java, 2.0) / y(java, 8.0);
    assert!((2.8..4.6).contains(&scaling), "scaling {scaling:.2}");
    // The three series nearly coincide; Empty is never slower.
    for &n in &[2.0, 4.0, 8.0] {
        assert!(y(empty, n) <= y(java, n) * 1.05);
        let spread = y(java, n) / y(cell, n);
        assert!((0.8..1.3).contains(&spread), "n={n} spread={spread:.2}");
    }
}

#[test]
fn fig7_shape_floor_then_divergence() {
    let fig = fig7(&DistPiParams {
        fig7_nodes: 8,
        fig7_samples: vec![30_000, 3_000_000, 300_000_000, 30_000_000_000],
        ..DistPiParams::default()
    });
    let java = fig.series("Java Mapper").unwrap();
    let cell = fig.series("Cell BE Mapper").unwrap();
    // Small N: both on the runtime floor, within noise of each other.
    let floor_ratio = y(java, 3e4) / y(cell, 3e4);
    assert!((0.6..1.6).contains(&floor_ratio), "{floor_ratio:.2}");
    // Large N: Java left the floor long ago, Cell much later.
    assert!(y(java, 3e10) > 10.0 * y(cell, 3e10));
    // Java grows ~linearly between the two largest points.
    let growth = y(java, 3e10) / y(java, 3e8);
    assert!((50.0..150.0).contains(&growth), "growth {growth:.1}");
}

#[test]
fn fig8_shape_orders_of_magnitude_and_flattening() {
    let fig = fig8(&DistPiParams {
        fig8_nodes: vec![4, 8, 16, 32],
        fig8_samples: 10_000_000_000, // 1e10, scaled from the paper's 1e11
        fig8_tenx: 100_000_000_000,
        ..DistPiParams::default()
    });
    let java = fig.series("Java Mapper").unwrap();
    let cell = fig.series("Cell BE Mapper").unwrap();
    let cell10 = fig.series("Cell BE Mapper (10x samples)").unwrap();
    // 1-2 orders of magnitude between Java and Cell (paper's claim).
    for &n in &[4.0, 8.0, 16.0, 32.0] {
        let ratio = y(java, n) / y(cell, n);
        assert!((8.0..400.0).contains(&ratio), "n={n} ratio={ratio:.1}");
    }
    // Java keeps scaling with nodes...
    assert!(y(java, 4.0) / y(java, 32.0) > 5.0);
    // ...while the Cell mapper flattens on the runtime floor: going from 16
    // to 32 nodes buys it much less than linear.
    let cell_tail = y(cell, 16.0) / y(cell, 32.0);
    assert!(cell_tail < 1.6, "cell still scaling: {cell_tail:.2}");
    // The 10x run keeps scaling further out (its compute is 10x bigger).
    let tenx_scaling = y(cell10, 4.0) / y(cell10, 32.0);
    assert!(tenx_scaling > 3.0, "10x scaling {tenx_scaling:.2}");
}

#[test]
fn empty_mapper_isolates_runtime_overhead() {
    // EmptyMapper ≈ Java ≈ Cell at any fixed size (paper: "the difference
    // ... is really small").
    let mr = MrConfig::default();
    let bytes = 8u64 << 30;
    let empty = dist::run_encrypt_job(11, 4, bytes, dist::AesMapper::Empty, &mr);
    let cell = dist::run_encrypt_job(12, 4, bytes, dist::AesMapper::Cell, &mr);
    let gap = cell.elapsed.as_secs_f64() / empty.elapsed.as_secs_f64();
    assert!((0.95..1.25).contains(&gap), "gap {gap:.2}");
}
