//! The paper's data-intensive scenario end to end: compare Java, Cell, and
//! Empty mappers on a distributed encryption job, showing the record-feed
//! bottleneck that makes acceleration invisible (Figures 4/5 in miniature).
//!
//!     cargo run --release --example encrypt_cluster

use accelmr::hybrid::experiments::dist::{run_encrypt_job, AesMapper};
use accelmr::prelude::*;

fn main() {
    let nodes = 8;
    let bytes: u64 = 16 << 30; // 16 GB over 8 nodes
    let mr = MrConfig::default();

    println!(
        "distributed encryption, {nodes} nodes, {} GB input",
        bytes >> 30
    );
    println!(
        "{:>14} {:>12} {:>16} {:>12}",
        "mapper", "time (s)", "agg MB/s", "feed-bound?"
    );
    for mapper in [AesMapper::Empty, AesMapper::Java, AesMapper::Cell] {
        let result = run_encrypt_job(1, nodes, bytes, mapper, &mr);
        let secs = result.elapsed.as_secs_f64();
        let mbps = bytes as f64 / 1e6 / secs;
        // Per-stream feed ceiling × concurrent mappers.
        let feed_ceiling = 8.5 * (nodes * mr.map_slots_per_node) as f64;
        println!(
            "{:>14} {:>12.1} {:>16.1} {:>12}",
            format!("{mapper:?}"),
            secs,
            mbps,
            if mbps < feed_ceiling * 1.05 {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
    println!("Despite the Cell kernel being ~35x faster than the Java kernel");
    println!("(700 vs 20 MB/s per mapper), all three mappers finish together:");
    println!("the RecordReader feed path (~8.5 MB/s per stream over loopback)");
    println!("is the bottleneck — the paper's central data-intensive finding.");
}
