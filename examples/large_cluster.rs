//! Large-cluster demo: a 128-worker terasort, an order of magnitude past
//! the paper's testbed and the scale the related work simulates (30-node
//! GPU-storage sweeps, shuffle-bound Xeon-Phi workloads).
//!
//! This is the scenario the incremental fluid-rate fabric exists for: a
//! cluster-wide shuffle puts thousands of concurrent flows on the wire,
//! and the engine coalesces each same-instant wave into one max-min solve
//! instead of re-solving per flow (run `net_scale` for the engine
//! comparison — the pre-optimization solver is >10x slower wall-clock at
//! this scale). The example prints both simulated makespan and the wall
//! clock spent producing it.
//!
//!     cargo run --release --example large_cluster

// audit:allow(wall-clock): this example reports real elapsed wall time; nothing from the host clock feeds the simulation
use std::time::Instant;

use accelmr::prelude::*;

fn main() {
    const WORKERS: usize = 128;
    const DATA: u64 = 16 << 30; // 16 GiB across the cluster

    let started = Instant::now(); // audit:allow(wall-clock): measures real wall speed of the run, printed only
    let mut cluster = ClusterBuilder::new()
        .seed(2009)
        .workers(WORKERS)
        .env(CellEnvFactory::default())
        .deploy();

    let mut session = cluster.session();
    session.submit(presets::terasort("/gray", DATA, WORKERS));
    let result = session.run();
    let wall = started.elapsed().as_secs_f64();

    assert!(result.succeeded, "terasort failed");
    println!("128-worker terasort, {} GiB:", DATA >> 30);
    println!(
        "  simulated makespan  {:>10.1} s",
        result.elapsed.as_secs_f64()
    );
    println!(
        "  map / reduce tasks  {:>7} / {}",
        result.map_tasks, result.reduce_tasks
    );
    println!(
        "  shuffle volume      {:>10.1} GiB",
        result.bytes_read as f64 / (1u64 << 30) as f64
    );
    let stats = cluster.sim.stats();
    println!(
        "  fluid flows         {:>10} ({} max-min solves)",
        stats.counter("net.flows_done"),
        stats.counter("net.solver_calls"),
    );
    println!("  wall clock          {:>10.2} s", wall);
    println!();
    println!("A cluster this size was wall-clock infeasible under the per-event");
    println!("reference solver; the component-incremental engine makes the");
    println!("ROADMAP's next step — dynamic membership at 1000 nodes — cheap.");
}
