//! Multi-job session demo: the shape the paper's two-level runtime was
//! built for — many heterogeneous jobs sharing one accelerated cluster.
//! A CPU-bound Pi job (Cell mappers), a feed-bound encryption job (Java
//! mappers), and a late-arriving Pi job land on the same JobTracker and
//! interleave deterministically over the same map slots.
//!
//!     cargo run --release --example multi_job_session

use accelmr::prelude::*;

fn main() {
    let mut cluster = ClusterBuilder::new()
        .seed(2009)
        .workers(8)
        .env(CellEnvFactory::default())
        .deploy();

    let mut session = cluster.session();
    let pi = session.submit(presets::pi(PiMapper::Cell, 1, 20_000_000_000).map_tasks(16));
    let enc = session.submit(presets::encrypt(AesMapper::Java, "/logs", 8 << 30).map_tasks(16));
    let late = session.submit_after(
        SimDuration::from_secs(120),
        presets::pi(PiMapper::Java, 2, 2_000_000_000)
            .name("pi-late")
            .map_tasks(16),
    );

    let results = session.run_until_complete();

    println!("three jobs, one cluster, FIFO slot sharing:");
    println!(
        "{:>24} {:>12} {:>10} {:>10}",
        "job", "time (s)", "maps", "attempts"
    );
    for r in &results {
        println!(
            "{:>24} {:>12.1} {:>10} {:>10}",
            r.name,
            r.elapsed.as_secs_f64(),
            r.map_tasks,
            r.attempts
        );
    }
    println!();
    println!(
        "pi ≈ {:.6} (concurrent), pi ≈ {:.6} (late arrival)",
        presets::pi_estimate(&pi.result()).unwrap(),
        presets::pi_estimate(&late.result()).unwrap()
    );
    println!(
        "encryption moved {} GB while the Pi jobs monopolized the SPEs",
        enc.result().bytes_read >> 30
    );
    println!();
    println!("The session driver generalizes the old one-job runner: N jobs in");
    println!("flight, staggered arrivals, deterministic DES interleaving — the");
    println!("mixed-workload scenario of the paper's shared-cluster motivation.");
}
