//! Elastic-cluster demo: the paper's "dynamically variable number of
//! nodes" end to end. A 32-worker terasort runs while nodes join *and*
//! leave mid-job:
//!
//! * joins grow the fabric, spawn a DataNode + TaskTracker, enter the
//!   NameNode's placement rotation, and start pulling map tasks on their
//!   first heartbeats;
//! * leaves are crashes — in-flight transfers abort, lost attempts and
//!   lost map outputs re-execute (with exactly-once accounting), reads
//!   reroute to surviving replicas, and the NameNode re-replicates every
//!   block back to its target.
//!
//!     cargo run --release --example elastic_cluster

use accelmr::dfs::NameNode;
use accelmr::prelude::*;

fn main() {
    const WORKERS: usize = 32;
    const BLOCKS: u64 = 128; // 64 MB each, 8 GiB total, replication 2

    let mut cluster = ClusterBuilder::new()
        .seed(7)
        .workers(WORKERS)
        .mr(MrConfig {
            tt_dead_after: SimDuration::from_secs(12),
            max_attempts: 12,
            ..MrConfig::default()
        })
        .dfs(DfsConfig {
            dead_after: SimDuration::from_secs(12),
            ..DfsConfig::default()
        })
        .deploy();

    let mut session = cluster.session();
    // 4 joins and 3 departures interleaved across t = 12 s .. 42 s.
    let leavers = [NodeId(3), NodeId(11), NodeId(19)];
    let joined = session.churn(ChurnSchedule::wave(
        4,
        &leavers,
        SimDuration::from_secs(12),
        SimDuration::from_secs(30),
    ));
    session.submit(
        presets::terasort_replicated("/gray", BLOCKS * (64 << 20), 8, 2).map_tasks(BLOCKS as usize),
    );
    let result = session.run();

    // Let the last death-detection window elapse so replication repair
    // finishes, then audit the NameNode.
    let resume = cluster.sim.now();
    cluster.sim.run_until(resume + SimDuration::from_secs(60));

    assert!(result.succeeded, "terasort failed under churn");
    let counts = result.dispatch_counts();
    let on_joined: u32 = joined
        .iter()
        .map(|&n| {
            counts
                .iter()
                .find(|&&(node, _)| node == n)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        })
        .sum();
    let stats = cluster.sim.stats();
    println!(
        "32-worker terasort under churn ({} GiB):",
        (BLOCKS * 64) >> 10
    );
    println!(
        "  simulated makespan   {:>8.1} s",
        result.elapsed.as_secs_f64()
    );
    println!(
        "  joins / leaves       {:>8} / {}",
        stats.counter("cluster.nodes_joined"),
        stats.counter("cluster.nodes_left"),
    );
    println!(
        "  joined nodes {:?} took {} task dispatches",
        joined.iter().map(|n| n.0).collect::<Vec<_>>(),
        on_joined
    );
    println!(
        "  attempts             {:>8} ({} map tasks; re-execution visible)",
        result.attempts, result.map_tasks
    );
    println!(
        "  blocks re-replicated {:>8}",
        stats.counter("dfs.blocks_replicated")
    );
    let nn = cluster
        .sim
        .actor_ref::<NameNode>(cluster.dfs.namenode)
        .expect("namenode alive");
    assert_eq!(nn.under_replicated_blocks(), 0);
    println!(
        "  under-replicated     {:>8} (every block back at target)",
        0
    );
    assert!(on_joined > 0, "joined nodes took no work");
}
