//! Heterogeneous cluster demo (the paper's §V outlook, implemented): only
//! a fraction of nodes carry Cell accelerators; adaptive kernels offload
//! where possible and fall back to the scalar engine elsewhere. Shows the
//! straggler effect the paper anticipated for mixed clusters, the
//! heterogeneity-aware scheduler that fixes it, plus the energy view of a
//! feed-bound job.
//!
//!     cargo run --release --example heterogeneous

use accelmr::hybrid::experiments::dist::run_encrypt_job;
use accelmr::hybrid::{job_energy, AdaptivePiKernel, EnergyModel, EngineClass, MixedEnvFactory};
use accelmr::mapred::SchedulerPolicy;
use accelmr::prelude::*;

fn run_mixed(accel: usize, out_of: usize, samples: u64) -> f64 {
    run_mixed_policy(accel, out_of, samples, SchedulerPolicy::LocalityFirst)
}

fn run_mixed_policy(accel: usize, out_of: usize, samples: u64, policy: SchedulerPolicy) -> f64 {
    let mut cluster = ClusterBuilder::new()
        .seed(11)
        .workers(8)
        .env(MixedEnvFactory {
            accelerated_of: (accel, out_of),
            cell: CellEnvFactory::default(),
        })
        .scheduler(policy)
        .deploy();
    let mut session = cluster.session();
    session.submit(
        JobBuilder::new("mixed-pi")
            .synthetic(samples)
            .kernel(AdaptivePiKernel::new(3))
            .rpc_aggregate(SumReducer {
                cycles_per_byte: 1.0,
            }),
    );
    session.run().elapsed.as_secs_f64()
}

fn main() {
    println!("== mixed-cluster Pi (8 nodes, 1e10 samples, adaptive kernel) ==");
    println!("{:>22} {:>12}", "accelerated nodes", "time (s)");
    for (accel, out_of, label) in [
        (1usize, 1usize, "8/8"),
        (1, 2, "4/8"),
        (1, 4, "2/8"),
        (0, 1, "0/8"),
    ] {
        let t = run_mixed(accel, out_of, 10_000_000_000);
        println!("{label:>22} {t:>12.1}");
    }
    println!();
    println!("Partial coverage buys little: placement-blind task assignment puts");
    println!("equal shares on plain nodes, whose scalar kernels dominate the job");
    println!("— the scheduling problem the paper's §V flags for future work.");

    println!();
    println!("== the remedy: heterogeneity-aware scheduling (4/8 accelerated) ==");
    println!("{:>22} {:>12}", "scheduler", "time (s)");
    for (label, policy) in [
        ("locality-first", SchedulerPolicy::LocalityFirst),
        ("adaptive-hetero", SchedulerPolicy::adaptive()),
    ] {
        let t = run_mixed_policy(1, 2, 10_000_000_000, policy);
        println!("{label:>22} {t:>12.1}");
    }
    println!();
    println!("The adaptive scheduler oversplits while unlearned, learns per-node");
    println!("throughput from completed attempts, and steers work (and the queue");
    println!("tail) toward the Cell nodes. See the `sched_ablation` bench bin.");

    println!();
    println!("== energy view of a feed-bound encryption job (4 nodes, 8 GB) ==");
    let model = EnergyModel::default();
    let java = run_encrypt_job(1, 4, 8 << 30, AesMapper::Java, &MrConfig::default());
    let cell = run_encrypt_job(2, 4, 8 << 30, AesMapper::Cell, &MrConfig::default());
    let java_busy = SimDuration::from_secs_f64((8u64 << 30) as f64 / 20.0e6);
    let cell_busy = SimDuration::from_secs_f64((8u64 << 30) as f64 / 700.0e6);
    let e_java = job_energy(&model, &java, EngineClass::PpeScalar, 4, java_busy);
    let e_cell = job_energy(&model, &cell, EngineClass::CellSpe, 4, cell_busy);
    println!(
        "{:>6}: {:>7.1} s, kernel {:>9.0} J, total {:>9.0} J",
        "java",
        java.elapsed.as_secs_f64(),
        e_java.kernel_joules,
        e_java.total_joules
    );
    println!(
        "{:>6}: {:>7.1} s, kernel {:>9.0} J, total {:>9.0} J",
        "cell",
        cell.elapsed.as_secs_f64(),
        e_cell.kernel_joules,
        e_cell.total_joules
    );
    println!();
    println!("Same job time (feed-bound), >10x less kernel energy — the paper's");
    println!("§V conjecture about accelerators and data-intensive workloads.");
}
