//! Overhead anatomy: decompose where a data-intensive job's time goes —
//! the paper's EmptyMapper methodology, extended with the runtime's own
//! metrics (feed stall vs compute) and ablations of the two overlap
//! mechanisms (record read-ahead and SPU double buffering).
//!
//!     cargo run --release --example overhead_anatomy

use accelmr::hybrid::experiments::dist::{run_encrypt_job, AesMapper};
use accelmr::prelude::*;

fn main() {
    let nodes = 4;
    let bytes: u64 = 8 << 30;

    println!("== anatomy of a distributed encryption job ({nodes} nodes, 8 GB) ==\n");

    // 1. EmptyMapper isolates runtime + feed cost.
    let empty = run_encrypt_job(1, nodes, bytes, AesMapper::Empty, &MrConfig::default());
    let java = run_encrypt_job(2, nodes, bytes, AesMapper::Java, &MrConfig::default());
    let cell = run_encrypt_job(3, nodes, bytes, AesMapper::Cell, &MrConfig::default());
    println!("mapper comparison (pipelined feed, 8.5 MB/s per stream):");
    for (name, r) in [("empty", &empty), ("java", &java), ("cell", &cell)] {
        println!(
            "  {name:>6}: {:>8.1} s  (kernel alone would need {:>7.1} s of compute)",
            r.elapsed.as_secs_f64(),
            match name {
                "java" => bytes as f64 / 20.0e6 / (nodes * 2) as f64,
                "cell" => bytes as f64 / 700.0e6 / (nodes * 2) as f64,
                _ => 0.0,
            }
        );
    }

    // 2. Ablation: disable record read-ahead (stop-and-wait feed).
    let no_pipe = MrConfig {
        pipelined_reads: false,
        ..MrConfig::default()
    };
    let java_np = run_encrypt_job(4, nodes, bytes, AesMapper::Java, &no_pipe);
    println!("\nablation — record read-ahead off (stop-and-wait):");
    println!(
        "  java: {:>8.1} s  (vs {:>8.1} s pipelined; overlap hides compute)",
        java_np.elapsed.as_secs_f64(),
        java.elapsed.as_secs_f64()
    );

    // 3. Ablation: slower feed cap shows the linear dependence.
    let slow_feed = MrConfig {
        record_feed_cap: Some(4.25e6),
        ..MrConfig::default()
    };
    let java_slow = run_encrypt_job(5, nodes, bytes, AesMapper::Java, &slow_feed);
    println!("\nablation — feed cap halved (8.5 -> 4.25 MB/s per stream):");
    println!(
        "  java: {:>8.1} s  (≈2x the pipelined time: feed-bound end to end)",
        java_slow.elapsed.as_secs_f64()
    );

    println!("\nconclusion (paper §IV-A): communication, not computation, limits");
    println!("data-intensive MapReduce — accelerating the kernel moves nothing.");
}
