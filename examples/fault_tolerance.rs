//! Fault tolerance demo: crash a TaskTracker mid-job and watch the
//! JobTracker detect the silence, re-execute lost tasks, and finish with
//! byte-exact output accounting.
//!
//!     cargo run --release --example fault_tolerance

use std::sync::Arc;

use accelmr::mapred::CrashTaskTracker;
use accelmr::prelude::*;

fn main() {
    let env = CellEnvFactory {
        materialized: true,
        ..CellEnvFactory::default()
    };
    let mut cluster = deploy_cluster(
        7,
        4,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        true, // materialized: DataNodes serve real bytes
    );

    // Small materialized input, replication 2 so a node death loses no data.
    let preload = PreloadSpec {
        path: "/in".into(),
        len: 48 << 20,
        block_size: Some(4 << 20),
        replication: Some(2),
        seed: 5,
    };
    let spec = JobSpec {
        name: "encrypt-with-crash".into(),
        input: JobInput::File {
            path: "/in".into(),
            record_bytes: Some(4 << 20),
        },
        kernel: Arc::new(CellAesKernel::new()),
        num_map_tasks: Some(12),
        output: OutputSink::Digest,
        reduce: ReduceSpec::None,
    };

    // Crash node 2's TaskTracker 25 simulated seconds in.
    let victim = cluster.mr.tasktracker_on(NodeId(2)).unwrap();
    cluster
        .sim
        .post_after(victim, Box::new(CrashTaskTracker), SimDuration::from_secs(25));

    let result = run_job(&mut cluster.sim, &cluster.mr, &cluster.dfs, vec![preload], spec);

    // Independent exactly-once verification: recompute the expected
    // order-independent digest of all encrypted records.
    let key = accelmr::hybrid::job_key();
    let mut expect = accelmr::kernels::UnorderedDigest::new();
    for r in 0..12u64 {
        let mut buf = vec![0u8; 4 << 20];
        accelmr::kernels::fill_deterministic(5, r * (4 << 20), &mut buf);
        accelmr::kernels::aes::modes::ctr_xor(
            &key,
            AesImpl::TTable,
            accelmr::hybrid::JOB_NONCE,
            r * (4 << 20) / 16,
            &mut buf,
        );
        expect.add(accelmr::kernels::checksum(&buf));
    }

    println!("job finished: success = {}", result.succeeded);
    println!("  simulated time     : {}", result.elapsed);
    println!("  map tasks          : {}", result.map_tasks);
    println!("  attempts launched  : {} (re-execution visible)", result.attempts);
    println!(
        "  tasktrackers dead  : {}",
        cluster.sim.stats().counter("mr.tasktrackers_declared_dead")
    );
    println!(
        "  ciphertext digest  : {:#018x} over {} records",
        result.digest.0, result.digest.1
    );
    let (exp_acc, exp_n) = expect.finish();
    assert_eq!(result.digest, (exp_acc, exp_n), "exactly-once violated!");
    println!("  verification       : digest matches serial reference — every");
    println!("                       record encrypted exactly once despite the crash");
}
