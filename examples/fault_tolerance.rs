//! Fault tolerance demo: crash a TaskTracker mid-job and watch the
//! JobTracker detect the silence, re-execute lost tasks, and finish with
//! byte-exact output accounting.
//!
//!     cargo run --release --example fault_tolerance

use accelmr::prelude::*;

fn main() {
    let mut cluster = ClusterBuilder::new()
        .seed(7)
        .workers(4)
        .env(CellEnvFactory {
            materialized: true,
            ..CellEnvFactory::default()
        })
        .materialized(true) // DataNodes serve real bytes
        .deploy();

    // Crash node 2's TaskTracker 10 simulated seconds in — mid-job, while
    // its map slots still hold unfinished tasks.
    let victim = cluster.mr.tasktracker_on(NodeId(2)).unwrap();
    cluster.sim.post_after(
        victim,
        Box::new(accelmr::mapred::CrashTaskTracker),
        SimDuration::from_secs(10),
    );

    // Small materialized input, replication 2 so a node death loses no data.
    let mut session = cluster.session();
    session.submit(
        JobBuilder::new("encrypt-with-crash")
            .input_file("/in")
            .record_bytes(4 << 20)
            .kernel(CellAesKernel::new())
            .map_tasks(12)
            .digest_output()
            .preload(
                PreloadSpec::new("/in", 48 << 20, 5)
                    .block_size(4 << 20)
                    .replication(2),
            ),
    );
    let result = session.run();

    // Independent exactly-once verification: recompute the expected
    // order-independent digest of all encrypted records.
    let key = accelmr::hybrid::job_key();
    let mut expect = accelmr::kernels::UnorderedDigest::new();
    for r in 0..12u64 {
        let mut buf = vec![0u8; 4 << 20];
        accelmr::kernels::fill_deterministic(5, r * (4 << 20), &mut buf);
        accelmr::kernels::aes::modes::ctr_xor(
            &key,
            AesImpl::TTable,
            accelmr::hybrid::JOB_NONCE,
            r * (4 << 20) / 16,
            &mut buf,
        );
        expect.add(accelmr::kernels::checksum(&buf));
    }

    println!("job finished: success = {}", result.succeeded);
    println!("  simulated time     : {}", result.elapsed);
    println!("  map tasks          : {}", result.map_tasks);
    println!(
        "  attempts launched  : {} (re-execution visible)",
        result.attempts
    );
    println!(
        "  tasktrackers dead  : {}",
        cluster.sim.stats().counter("mr.tasktrackers_declared_dead")
    );
    println!(
        "  ciphertext digest  : {:#018x} over {} records",
        result.digest.0, result.digest.1
    );
    let (exp_acc, exp_n) = expect.finish();
    assert_eq!(result.digest, (exp_acc, exp_n), "exactly-once violated!");
    println!("  verification       : digest matches serial reference — every");
    println!("                       record encrypted exactly once despite the crash");
}
