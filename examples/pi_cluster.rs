//! The paper's CPU-intensive scenario: Pi estimation with Java vs Cell
//! mappers across cluster sizes (Figure 8 in miniature), showing 1-2 orders
//! of magnitude from acceleration — until the Hadoop floor binds.
//!
//!     cargo run --release --example pi_cluster

use accelmr::hybrid::experiments::dist::{run_pi_job, PiMapper};
use accelmr::prelude::*;

fn main() {
    let samples: u64 = 10_000_000_000; // 1e10
    let mr = MrConfig::default();

    println!("distributed Pi, {samples:.0e} samples");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>12}",
        "nodes", "java (s)", "cell (s)", "speedup", "pi (cell)"
    );
    for nodes in [4usize, 8, 16, 32] {
        let (java, _) = run_pi_job(1, nodes, samples, PiMapper::Java, &mr);
        let (cell, pi) = run_pi_job(2, nodes, samples, PiMapper::Cell, &mr);
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>9.1}x {:>12.6}",
            nodes,
            java.elapsed.as_secs_f64(),
            cell.elapsed.as_secs_f64(),
            java.elapsed.as_secs_f64() / cell.elapsed.as_secs_f64(),
            pi
        );
    }
    println!();
    println!("The Java mapper scales ~linearly with nodes; the Cell mapper hits");
    println!("the Hadoop runtime floor (job init + heartbeat-paced dispatch +");
    println!("task start overheads) and stops improving — the paper's Figure 8.");
}
