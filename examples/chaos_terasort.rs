//! Chaos-plane demo: a 16-worker terasort survives a deterministic fault
//! storm — a healed network partition, a gray (silently slow) node, and
//! a heartbeat-loss window that falsely kills a live tracker — with
//! exactly-once output accounting:
//!
//! * the partitioned node's transfers *stall at rate zero* and resume at
//!   heal (or ride the fetch-timeout retry path onto fresh flows);
//! * the gray node keeps heartbeating while computing at quarter speed,
//!   so only speculation and the data plane can notice it;
//! * the falsely-dead node's requeued attempts are *epoch-fenced*: its
//!   zombie completion reports, riding the first post-window heartbeat,
//!   are rejected so nothing is double-counted — and the node rejoins
//!   service (resurrection) instead of being stranded.
//!
//! The run asserts the digest matches a fault-free run of the same seed
//! and that the reduce aggregate equals the input size exactly.
//!
//!     cargo run --release --example chaos_terasort

use accelmr::prelude::*;

const WORKERS: usize = 16;
const BLOCKS: u64 = 64; // 64 MB each, 4 GiB total, replication 2

fn run(plan: FaultPlan) -> (JobResult, Vec<(&'static str, u64)>) {
    let mut cluster = ClusterBuilder::new()
        .seed(2009)
        .workers(WORKERS)
        .mr(MrConfig {
            tt_dead_after: SimDuration::from_secs(12),
            speculative: true,
            ..MrConfig::hardened() // I/O timeouts, blacklisting, watchdog
        })
        .dfs(DfsConfig {
            dead_after: SimDuration::from_secs(12),
            ..DfsConfig::default()
        })
        .deploy();
    let mut session = cluster.session();
    session.faults(plan);
    session.submit(
        presets::terasort_replicated("/chaos", BLOCKS * (64 << 20), 8, 2)
            .map_tasks(BLOCKS as usize),
    );
    let result = session.run();
    let counters = [
        "net.partitions_healed",
        "mr.gray_injected",
        "mr.heartbeats_suppressed",
        "mr.fenced_reports",
        "mr.tt_resurrections",
        "mr.attempt_retries",
        "dfs.read_retries",
        "mr.speculative_launches",
    ]
    .iter()
    .map(|&name| (name, cluster.sim.stats().counter(name)))
    .collect();
    (result, counters)
}

fn main() {
    let sec = SimDuration::from_secs;
    let plan = FaultPlan::new()
        // NIC down for 30 s mid-map: flows stall (not abort), then resume.
        .partition_at(sec(12), NodeId(2), sec(30))
        // Quarter-speed compute for 40 s; heartbeats keep flowing.
        .gray_at(sec(15), NodeId(5), 0.25, sec(40))
        // No heartbeats for 25 s: long enough to trip death detection.
        .heartbeat_loss_at(sec(20), NodeId(9), sec(25));

    let (baseline, _) = run(FaultPlan::new());
    let (faulted, counters) = run(plan);

    assert!(baseline.succeeded && faulted.succeeded);
    assert_eq!(
        faulted.digest, baseline.digest,
        "chaos changed the output digest"
    );
    let total: u64 = faulted.kv.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, BLOCKS * (64 << 20), "exactly-once violated");

    println!("chaos terasort: {WORKERS} workers, {BLOCKS} x 64 MB blocks");
    println!(
        "  fault-free makespan {:.1} s, faulted {:.1} s ({:.2}x)",
        baseline.elapsed.as_secs_f64(),
        faulted.elapsed.as_secs_f64(),
        faulted.elapsed.as_secs_f64() / baseline.elapsed.as_secs_f64()
    );
    for (name, v) in counters {
        println!("  {name:<26} {v}");
    }
    println!("  digest exact under partition + gray + false death");
}
