//! Terasort-style experiment: full map → shuffle → reduce sort job, and the
//! paper's closing observation that per-node throughput is feed-limited to
//! single-digit MB/s.
//!
//!     cargo run --release --example terasort

use accelmr::hybrid::experiments::terasort::{terasort_feed_rate, TerasortParams};
use accelmr::kernels::sort::{generate_records, is_sorted, merge_sorted_runs, radix_sort};

fn main() {
    // First, the real sort kernel on real records (the in-node compute the
    // distributed job models).
    let mut runs = Vec::new();
    for s in 0..4u64 {
        let mut run = generate_records(s, 0, 250_000);
        radix_sort(&mut run);
        assert!(is_sorted(&run));
        runs.push(run);
    }
    let merged = merge_sorted_runs(runs);
    assert!(is_sorted(&merged));
    println!(
        "in-node kernel check: radix-sorted and merged {} GraySort records",
        merged.len()
    );
    println!();

    // Then the distributed experiment.
    let fig = terasort_feed_rate(&TerasortParams::default());
    print!("{}", fig.to_table());
    println!();
    println!("The paper's Terabyte Sort note: the winning 2009 entry moved only");
    println!("~5.5 MB/s per node — matching what our simulated stack shows, the");
    println!("feed/shuffle paths bound every data-intensive MapReduce job.");
}
