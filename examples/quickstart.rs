//! Quickstart: deploy a small accelerated cluster and run one job of each
//! workload class — encryption (data-intensive) and Pi (CPU-intensive).
//!
//!     cargo run --release --example quickstart

use std::sync::Arc;

use accelmr::prelude::*;

fn main() {
    // ---- CPU-intensive: Monte Carlo Pi on Cell-accelerated mappers. ----
    let env = CellEnvFactory::default();
    let mut cluster = deploy_cluster(
        42,
        4,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        false,
    );
    let spec = JobSpec {
        name: "pi".into(),
        input: JobInput::Synthetic {
            total_units: 100_000_000,
        },
        kernel: Arc::new(CellPiKernel::new(7)),
        num_map_tasks: None, // one per map slot, like the paper
        output: OutputSink::Discard,
        reduce: ReduceSpec::RpcAggregate {
            reducer: Arc::new(SumReducer { cycles_per_byte: 1.0 }),
        },
    };
    let result = run_job(&mut cluster.sim, &cluster.mr, &cluster.dfs, vec![], spec);
    let inside = result.kv.iter().find(|&&(k, _)| k == 0).unwrap().1;
    let total = result.kv.iter().find(|&&(k, _)| k == 1).unwrap().1;
    println!(
        "pi job: {} map tasks, simulated time {}, pi ≈ {:.6}",
        result.map_tasks,
        result.elapsed,
        4.0 * inside as f64 / total as f64
    );

    // ---- Data-intensive: encrypt 4 GB spread over the cluster. ----
    let env = CellEnvFactory::default();
    let mut cluster = deploy_cluster(
        43,
        4,
        NetConfig::default(),
        DfsConfig::default(),
        MrConfig::default(),
        &env,
        false,
    );
    let preload = PreloadSpec {
        path: "/input".into(),
        len: 4 << 30,
        block_size: Some(64 << 20),
        replication: Some(1),
        seed: 9,
    };
    let spec = JobSpec {
        name: "encrypt".into(),
        input: JobInput::File {
            path: "/input".into(),
            record_bytes: Some(64 << 20),
        },
        kernel: Arc::new(CellAesKernel::new()),
        num_map_tasks: None,
        output: OutputSink::Dfs {
            path: "/encrypted".into(),
            replication: Some(1),
        },
        reduce: ReduceSpec::None,
    };
    let result = run_job(&mut cluster.sim, &cluster.mr, &cluster.dfs, vec![preload], spec);
    println!(
        "encrypt job: {} map tasks, {} read, simulated time {} ({:.1} MB/s aggregate)",
        result.map_tasks,
        result.bytes_read,
        result.elapsed,
        result.bytes_read as f64 / 1e6 / result.elapsed.as_secs_f64()
    );
    println!(
        "record reads: {} local, {} remote (locality-aware scheduling)",
        result.local_reads, result.remote_reads
    );
}
