//! Quickstart: deploy a small accelerated cluster and run one job of each
//! workload class — encryption (data-intensive) and Pi (CPU-intensive).
//!
//!     cargo run --release --example quickstart

use accelmr::prelude::*;

fn main() {
    // ---- CPU-intensive: Monte Carlo Pi on Cell-accelerated mappers. ----
    let mut cluster = ClusterBuilder::new()
        .seed(42)
        .workers(4)
        .env(CellEnvFactory::default())
        .deploy();
    let mut session = cluster.session();
    // One map task per slot (the paper's NumMappers default).
    session.submit(presets::pi(PiMapper::Cell, 7, 100_000_000));
    let result = session.run();
    println!(
        "pi job: {} map tasks, simulated time {}, pi ≈ {:.6}",
        result.map_tasks,
        result.elapsed,
        presets::pi_estimate(&result).unwrap()
    );

    // ---- Data-intensive: encrypt 4 GB spread over the cluster. ----
    let mut cluster = ClusterBuilder::new()
        .seed(43)
        .workers(4)
        .env(CellEnvFactory::default())
        .deploy();
    let mut session = cluster.session();
    session.submit(
        presets::encrypt_seeded(AesMapper::Cell, "/input", 4 << 30, 9)
            .name("encrypt")
            .write_output("/encrypted", Some(1)),
    );
    let result = session.run();
    println!(
        "encrypt job: {} map tasks, {} read, simulated time {} ({:.1} MB/s aggregate)",
        result.map_tasks,
        result.bytes_read,
        result.elapsed,
        result.bytes_read as f64 / 1e6 / result.elapsed.as_secs_f64()
    );
    println!(
        "record reads: {} local, {} remote (locality-aware scheduling)",
        result.local_reads, result.remote_reads
    );
}
